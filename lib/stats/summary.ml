type t = { n : int; mean : float; std : float; sem : float; min : float; max : float }

let mean xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let std xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let m = mean xs in
  let s = std xs in
  {
    n;
    mean = m;
    std = s;
    sem = s /. sqrt (float_of_int n);
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
  }

let of_list xs = of_array (Array.of_list xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Summary.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let ci95 t = (t.mean -. (1.96 *. t.sem), t.mean +. (1.96 *. t.sem))

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g std=%.4g range=[%.4g, %.4g]" t.n t.mean t.std t.min
    t.max
