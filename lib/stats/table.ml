type t = { headers : string list; mutable rows : string list list }

let create headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let format_float precision v =
  if Float.is_integer v && abs_float v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" precision v

let add_float_row ?(precision = 4) t label floats =
  add_row t (label :: List.map (format_float precision) floats)

let headers t = t.headers

let rows t = List.rev t.rows

let all_rows t = t.headers :: List.rev t.rows

let to_string t =
  let rows = all_rows t in
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let render_row row =
    String.concat "  " (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  let header = render_row t.headers in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row (List.rev t.rows))

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map csv_escape row)) (all_rows t))

let print t =
  print_string (to_string t);
  print_newline ()
