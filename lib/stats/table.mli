(** Aligned ASCII tables and CSV output for experiment results. *)

type t

val create : string list -> t
(** [create headers] starts a table. *)

val add_row : t -> string list -> unit
(** Must match the header arity. *)

val add_float_row : ?precision:int -> t -> string -> float list -> unit
(** Convenience: a leading label cell, then floats rendered with the
    given precision (default 4).  Label + floats must match the
    header arity. *)

val headers : t -> string list

val rows : t -> string list list
(** Data rows (headers excluded) in insertion order. *)

val to_string : t -> string
(** Aligned plain text, ready for a terminal or a log. *)

val to_csv : t -> string

val print : t -> unit
(** [to_string] to stdout, with a trailing newline. *)
