open Fn_graph

(* Every generator here mirrors a materializing constructor in this
   directory edge-for-edge (the property tests compare them through
   Gview.materialize and Graph.equal).  The closures only do
   coordinate / bit arithmetic on the node id — no per-call
   allocation — so a 10^7-node torus costs nothing until an algorithm
   actually walks it. *)

let materialize = Gview.materialize

(* ---- mesh / torus --------------------------------------------------- *)

(* [dims] is copied: the geometry must not change under the closures. *)
let grid_geometry ~who dims =
  if Array.length dims = 0 then invalid_arg (who ^ ": zero dimensions");
  Array.iter (fun s -> if s < 1 then invalid_arg (who ^ ": side < 1")) dims;
  let dims = Array.copy dims in
  let d = Array.length dims in
  let strides = Array.make d 1 in
  for i = d - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  let size = Array.fold_left ( * ) 1 dims in
  (dims, strides, size)

let mesh dims =
  let dims, strides, size = grid_geometry ~who:"Implicit.mesh" dims in
  let d = Array.length dims in
  let max_degree = Array.fold_left (fun acc s -> acc + min (s - 1) 2) 0 dims in
  let iter v f =
    for i = 0 to d - 1 do
      let s = strides.(i) and side = dims.(i) in
      let c = v / s mod side in
      if c > 0 then f (v - s);
      if c + 1 < side then f (v + s)
    done
  in
  let degree v =
    let deg = ref 0 in
    for i = 0 to d - 1 do
      let c = v / strides.(i) mod dims.(i) in
      if c > 0 then incr deg;
      if c + 1 < dims.(i) then incr deg
    done;
    !deg
  in
  let has_edge u v =
    let diff = abs (u - v) in
    u <> v
    && begin
         let ok = ref false in
         for i = 0 to d - 1 do
           if diff = strides.(i) then begin
             (* same stride-i row: the lower id must not sit on the
                upper face of dimension i *)
             let lo = min u v in
             if (lo / strides.(i) mod dims.(i)) + 1 < dims.(i) then ok := true
           end
         done;
         !ok
       end
  in
  Gview.implicit ~n:size ~max_degree ~degree ~has_edge iter

let torus dims =
  let dims, strides, size = grid_geometry ~who:"Implicit.torus" dims in
  let d = Array.length dims in
  (* per-dimension contribution: 2 distinct ring neighbors for sides
     >= 3, 1 for side 2 (both directions land on the same node), 0 for
     side 1 — exactly what the materializing Torus.graph dedupes to *)
  let per_dim s = if s >= 3 then 2 else s - 1 in
  let max_degree = Array.fold_left (fun acc s -> acc + per_dim s) 0 dims in
  let iter v f =
    for i = 0 to d - 1 do
      let s = strides.(i) and side = dims.(i) in
      if side >= 2 then begin
        let c = v / s mod side in
        let up = if c + 1 = side then v - (c * s) else v + s in
        let down = if c = 0 then v + ((side - 1) * s) else v - s in
        f up;
        if down <> up then f down
      end
    done
  in
  let degree _ = max_degree in
  Gview.implicit ~n:size ~max_degree ~degree iter

(* ---- hypercube ------------------------------------------------------ *)

let hypercube d =
  if d < 0 || d > 25 then invalid_arg "Implicit.hypercube: need 0 <= d <= 25";
  let n = 1 lsl d in
  let iter v f =
    for bit = 0 to d - 1 do
      f (v lxor (1 lsl bit))
    done
  in
  let has_edge u v =
    let x = u lxor v in
    x <> 0 && x land (x - 1) = 0
  in
  Gview.implicit ~n ~max_degree:d ~degree:(fun _ -> d) ~has_edge iter

(* ---- butterflies ---------------------------------------------------- *)

let butterfly_unwrapped k =
  if k < 1 || k > 20 then invalid_arg "Implicit.butterfly_unwrapped: need 1 <= k <= 20";
  let rows = 1 lsl k in
  let n = (k + 1) * rows in
  let iter v f =
    let level = v / rows and row = v mod rows in
    if level < k then begin
      f (((level + 1) * rows) + row);
      f (((level + 1) * rows) + (row lxor (1 lsl level)))
    end;
    if level > 0 then begin
      f (((level - 1) * rows) + row);
      f (((level - 1) * rows) + (row lxor (1 lsl (level - 1))))
    end
  in
  let degree v =
    let level = v / rows in
    (if level < k then 2 else 0) + if level > 0 then 2 else 0
  in
  let max_degree = if k = 1 then 2 else 4 in
  Gview.implicit ~n ~max_degree ~degree iter

let butterfly_wrapped k =
  if k < 2 || k > 20 then invalid_arg "Implicit.butterfly_wrapped: need 2 <= k <= 20";
  let rows = 1 lsl k in
  let n = k * rows in
  let iter v f =
    let level = v / rows and row = v mod rows in
    let next = (level + 1) mod k and prev = (level + k - 1) mod k in
    f ((next * rows) + row);
    f ((next * rows) + (row lxor (1 lsl level)));
    (* at k = 2 the straight edge to [next] IS the straight edge to
       [prev] (the two levels coincide); emitting it twice would be a
       duplicate the CSR twin dedupes *)
    if k > 2 then f ((prev * rows) + row);
    f ((prev * rows) + (row lxor (1 lsl prev)))
  in
  let max_degree = if k = 2 then 3 else 4 in
  Gview.implicit ~n ~max_degree ~degree:(fun _ -> max_degree) iter

(* ---- de Bruijn ------------------------------------------------------ *)

let debruijn k =
  if k < 1 || k > 22 then invalid_arg "Implicit.debruijn: need 1 <= k <= 22";
  let n = 1 lsl k in
  let mask = n - 1 in
  let high = 1 lsl (k - 1) in
  (* successors and predecessors of the shift map, self-loops dropped
     and overlaps emitted once — the undirected dedupe the CSR twin
     gets from its builder *)
  let iter v f =
    let s0 = (v lsl 1) land mask in
    let s1 = s0 lor 1 in
    let p0 = v lsr 1 in
    let p1 = p0 lor high in
    if s0 <> v then f s0;
    if s1 <> v then f s1;
    if p0 <> v && p0 <> s0 && p0 <> s1 then f p0;
    if p1 <> v && p1 <> s0 && p1 <> s1 && p1 <> p0 then f p1
  in
  (* exact max degrees at the degenerate orders: K2 at k = 1; at
     k = 2 every pred/succ set overlaps or hits a self-loop somewhere,
     capping the max at 3 *)
  let max_degree = if k = 1 then 1 else if k = 2 then 3 else 4 in
  Gview.implicit ~n ~max_degree iter

(* ---- chain-replacement ---------------------------------------------- *)

let chain_graph base ~k =
  if k < 2 || k mod 2 = 1 then invalid_arg "Implicit.chain_graph: k must be even and >= 2";
  let n_base = Graph.num_nodes base in
  let base_edges = Graph.edges base in
  let m = Array.length base_edges in
  let n = n_base + (m * k) in
  (* base_edges is lex-sorted ((u, v), u < v) by Graph.edges, so the
     chain index of an incident edge is a binary search away *)
  let edge_index u v =
    let key = if u < v then (u, v) else (v, u) in
    let lo = ref 0 and hi = ref (m - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Graph.compare_int_pair base_edges.(mid) key in
      if c = 0 then begin
        found := mid;
        lo := !hi + 1
      end
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  let iter v f =
    if v < n_base then
      Graph.iter_neighbors base v (fun w ->
          let j = edge_index v w in
          if v < w then f (n_base + (j * k)) else f (n_base + (j * k) + k - 1))
    else begin
      let off = v - n_base in
      let j = off / k and i = off mod k in
      let u, w = base_edges.(j) in
      if i = 0 then f u else f (v - 1);
      if i = k - 1 then f w else f (v + 1)
    end
  in
  let degree v = if v < n_base then Graph.degree base v else 2 in
  let max_degree = max (Graph.max_degree base) 2 in
  Gview.implicit ~n ~max_degree ~degree iter
