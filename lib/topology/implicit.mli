open Fn_graph

(** Implicit (generator-defined) topologies.

    Each function returns a {!Gview.t} whose [Implicit] arm computes
    neighbors by coordinate / bit arithmetic — no edge set is stored,
    so these scale to n = 10^7 and beyond while the materializing
    constructors in this directory cap out around 10^5.  Every
    generator agrees {e edge-for-edge} with its materializing twin
    ([Mesh.graph], [Torus.graph], [Hypercube.graph],
    [Butterfly.unwrapped]/[wrapped], [Debruijn.graph],
    [Chain_graph.build]) — the property tests assert
    [Graph.equal (materialize (gen ...)) (twin ...)] across a size
    sweep. *)

val materialize : Gview.t -> Graph.t
(** {!Gview.materialize}: flatten any view into a validated CSR graph
    (small n only — this is the differential-testing bridge). *)

val mesh : int array -> Gview.t
(** [mesh dims]: the d-dimensional grid of [Mesh.graph dims] (no
    wraparound), row-major ids.  The [dims] array is copied. *)

val torus : int array -> Gview.t
(** [torus dims]: wraparound grid of [Torus.graph dims]; sides of 2
    contribute a single (deduplicated) ring edge, sides of 1 none. *)

val hypercube : int -> Gview.t
(** [hypercube d]: the d-cube on [2^d] nodes of [Hypercube.graph]. *)

val butterfly_unwrapped : int -> Gview.t
(** [Butterfly.unwrapped k]: [k+1] levels of [2^k] rows. *)

val butterfly_wrapped : int -> Gview.t
(** [Butterfly.wrapped k]: [k] levels with level [k-1] wired back to
    level 0; at [k = 2] the coinciding straight edges are emitted
    once, matching the CSR twin's dedupe. *)

val debruijn : int -> Gview.t
(** [Debruijn.graph k]: undirected order-[2^k] de Bruijn graph
    (shift-map successors and predecessors, self-loops dropped). *)

val chain_graph : Graph.t -> k:int -> Gview.t
(** [chain_graph base ~k]: [Chain_graph.build base ~k] as a view —
    every base edge replaced by a [k]-node chain.  Holds onto [base]'s
    CSR (and its lex-sorted edge array) but never materializes the
    chain nodes; [k] must be even and >= 2. *)
