(* Fuzz smoke: 500 seeded grammar-aware fuzz lines against an
   in-process faultnetd session (see Fn_online.Fuzz).  Attached to
   @runtest via the @fuzz-smoke alias, so every test run re-proves the
   two crash-only protocol obligations on a fresh engine: no input
   line raises, and replayable state moves only on [ok] replies.  The
   seed is fixed — a failure here is a deterministic regression, and
   the offending line belongs in test/fixtures/fuzz/corpus.txt. *)

let () =
  let view =
    Fn_graph.Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8))
  in
  let cfg =
    { Fn_online.Engine.default_config with Fn_online.Engine.alpha = 1.0; epsilon = 0.5 }
  in
  let engine = Fn_online.Engine.create ~cfg view in
  let r = Fn_online.Fuzz.run engine ~seed:0xf5 ~count:500 in
  Printf.printf "fuzz-smoke: %d lines, %d ok, %d err, %d ignored, %d exceptions, %d violations\n"
    r.Fn_online.Fuzz.lines r.Fn_online.Fuzz.ok r.Fn_online.Fuzz.err r.Fn_online.Fuzz.ignored
    (List.length r.Fn_online.Fuzz.exceptions)
    (List.length r.Fn_online.Fuzz.violations);
  List.iter
    (fun (l, e) -> Printf.printf "  exception on %S: %s\n" l e)
    r.Fn_online.Fuzz.exceptions;
  List.iter
    (fun l -> Printf.printf "  state moved on non-ok reply to %S\n" l)
    r.Fn_online.Fuzz.violations;
  if not (Fn_online.Fuzz.clean r) then exit 1
