(* fn_bench: robust statistics on known vectors, deterministic
   bootstrap, BENCH_*.json round-trip, compare verdicts on synthetic
   baselines, the measurement loop in smoke mode, and
   bench-completeness — every lib/experiments/e*.ml must have a
   registered kernel, mirroring the registry-completeness test. *)

open Testutil
open Fn_bench

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_median () =
  check_float "odd length" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |]);
  check_float "even length" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "singleton" 7.0 (Stats.median [| 7.0 |]);
  check_float "outlier immune" 2.0 (Stats.median [| 1.0; 2.0; 1e12 |]);
  let input = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median input);
  check_float "input not mutated" 3.0 input.(0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.median: empty array") (fun () ->
      ignore (Stats.median [||]))

let test_mad () =
  (* median 3, |x - 3| = [2;1;0;1;2], mad = 1 *)
  check_float "odd" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "constant" 0.0 (Stats.mad [| 4.0; 4.0; 4.0 |]);
  (* one wild outlier moves the MAD by at most one rank *)
  check_float "outlier robust" 1.0 (Stats.mad [| 1.0; 2.0; 3.0; 4.0; 1e12 |])

let test_trimmed_mean () =
  (* 20% of 10 = 2 trimmed per tail: mean of 3..8 *)
  let xs = Array.init 10 (fun i -> float_of_int (i + 1)) in
  check_float "default trim" 5.5 (Stats.trimmed_mean xs);
  check_float "no trim is mean" 5.5 (Stats.trimmed_mean ~trim:0.0 xs);
  (* sorted: 1..9, 1e12; 20% trims two per tail -> mean of 3..8 *)
  check_float "outlier suppressed" 5.5
    (Stats.trimmed_mean [| 9.0; 1.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 1e12; 2.0 |]);
  (* tiny arrays degrade to the plain mean *)
  check_float "short degrades" 2.0 (Stats.trimmed_mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.check_raises "bad trim"
    (Invalid_argument "Stats.trimmed_mean: trim must be in [0, 0.5)") (fun () ->
      ignore (Stats.trimmed_mean ~trim:0.5 [| 1.0 |]))

let test_quantile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "q0 is min" 1.0 (Stats.quantile xs 0.0);
  check_float "q1 is max" 4.0 (Stats.quantile xs 1.0);
  check_float "interpolated" 2.5 (Stats.quantile xs 0.5)

let test_bootstrap_deterministic () =
  let xs = Array.init 30 (fun i -> 100.0 +. float_of_int ((i * 37) mod 17)) in
  let ci seed = Stats.bootstrap_ci ~rng:(Fn_prng.Rng.create seed) xs in
  let lo1, hi1 = ci 7 and lo2, hi2 = ci 7 in
  check_float "same seed, same low" lo1 lo2;
  check_float "same seed, same high" hi1 hi2;
  check_bool "ordered" true (lo1 <= hi1);
  let m = Stats.median xs in
  check_bool "brackets the median" true (lo1 <= m && m <= hi1);
  (* a different seed resamples differently (overwhelmingly likely) *)
  let lo3, hi3 = ci 8 in
  check_bool "seed matters" true (lo3 <> lo1 || hi3 <> hi1);
  let lo, hi = Stats.bootstrap_ci ~rng:(Fn_prng.Rng.create 1) [| 42.0 |] in
  check_float "degenerate low" 42.0 lo;
  check_float "degenerate high" 42.0 hi

(* ------------------------------------------------------------------ *)
(* Measure (smoke mode: deterministic shape, no timing assumptions)    *)
(* ------------------------------------------------------------------ *)

let test_measure_smoke () =
  let calls = ref 0 in
  let s = Measure.run Measure.smoke (fun () -> incr calls) in
  check_int "kernel ran exactly once" 1 !calls;
  check_int "one sample" 1 s.Measure.runs;
  check_int "batch of one" 1 s.Measure.batch;
  check_int "one time recorded" 1 (Array.length s.Measure.times_ns);
  check_bool "time is positive" true (s.Measure.times_ns.(0) > 0.0)

let test_measure_quick_bounds () =
  let s = Measure.run Measure.quick (fun () -> ()) in
  check_bool "runs within bounds" true
    (s.Measure.runs >= Measure.quick.Measure.min_runs
    && s.Measure.runs <= Measure.quick.Measure.max_runs);
  check_bool "batch at least one" true (s.Measure.batch >= 1);
  check_bool "all samples nonnegative" true (Array.for_all (fun t -> t >= 0.0) s.Measure.times_ns)

(* ------------------------------------------------------------------ *)
(* Baseline JSON round-trip                                            *)
(* ------------------------------------------------------------------ *)

let result name median (lo, hi) =
  {
    Suite.name;
    items = 3;
    stats =
      {
        Suite.runs = 12;
        batch = 4;
        median_ns = median;
        mad_ns = 1.5;
        trimmed_mean_ns = median +. 0.25;
        ci_low_ns = lo;
        ci_high_ns = hi;
        bytes_per_run = 4096.5;
        items_per_sec = 3e9 /. median;
      };
  }

let synthetic_baseline () =
  {
    Baseline.meta =
      { Baseline.suite = "experiments"; git_rev = "abc123"; host = "testhost"; quick = true; created_ns = 1234567890 };
    kernels = [ result "e1_fast" 100.0 (95.0, 105.0); result "e2_slow" 5000.25 (4900.0, 5100.5) ];
  }

let check_result_eq name (a : Suite.result) (b : Suite.result) =
  check_bool (name ^ " name") true (a.Suite.name = b.Suite.name);
  check_int (name ^ " items") a.Suite.items b.Suite.items;
  check_int (name ^ " runs") a.Suite.stats.Suite.runs b.Suite.stats.Suite.runs;
  check_int (name ^ " batch") a.Suite.stats.Suite.batch b.Suite.stats.Suite.batch;
  let eps = 1e-6 in
  check_float_eps eps (name ^ " median") a.Suite.stats.Suite.median_ns b.Suite.stats.Suite.median_ns;
  check_float_eps eps (name ^ " mad") a.Suite.stats.Suite.mad_ns b.Suite.stats.Suite.mad_ns;
  check_float_eps eps (name ^ " trimmed") a.Suite.stats.Suite.trimmed_mean_ns
    b.Suite.stats.Suite.trimmed_mean_ns;
  check_float_eps eps (name ^ " ci low") a.Suite.stats.Suite.ci_low_ns b.Suite.stats.Suite.ci_low_ns;
  check_float_eps eps (name ^ " ci high") a.Suite.stats.Suite.ci_high_ns
    b.Suite.stats.Suite.ci_high_ns;
  check_float_eps eps (name ^ " bytes") a.Suite.stats.Suite.bytes_per_run
    b.Suite.stats.Suite.bytes_per_run;
  check_float_eps 1e-3 (name ^ " items/s") a.Suite.stats.Suite.items_per_sec
    b.Suite.stats.Suite.items_per_sec

let test_json_roundtrip () =
  let b = synthetic_baseline () in
  let json_text = Fn_obs.Jsonx.to_string (Baseline.to_json b) in
  match Fn_obs.Jsonx.parse json_text with
  | None -> Alcotest.fail "serialized baseline did not parse"
  | Some j -> (
    match Baseline.of_json j with
    | Error e -> Alcotest.fail ("decode failed: " ^ e)
    | Ok b' ->
      check_bool "suite" true (b'.Baseline.meta.Baseline.suite = "experiments");
      check_bool "git rev" true (b'.Baseline.meta.Baseline.git_rev = "abc123");
      check_bool "host" true (b'.Baseline.meta.Baseline.host = "testhost");
      check_bool "quick" true b'.Baseline.meta.Baseline.quick;
      check_int "created" 1234567890 b'.Baseline.meta.Baseline.created_ns;
      check_int "kernel count" 2 (List.length b'.Baseline.kernels);
      List.iter2 (fun a b -> check_result_eq a.Suite.name a b) b.Baseline.kernels
        b'.Baseline.kernels)

let test_json_file_roundtrip () =
  let b = synthetic_baseline () in
  let dir = Filename.temp_file "fn_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Baseline.save ~dir b in
  check_bool "filename" true (Filename.basename path = "BENCH_experiments.json");
  (match Baseline.load path with
  | Error e -> Alcotest.fail ("load failed: " ^ e)
  | Ok b' -> check_int "kernels survive the file" 2 (List.length b'.Baseline.kernels));
  Sys.remove path;
  Sys.rmdir dir

let test_json_rejects () =
  let reject name text =
    match Fn_obs.Jsonx.parse text with
    | None -> ()
    | Some j -> (
      match Baseline.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not decode" name)
  in
  reject "wrong version" {|{"schema_version": 99, "suite": "x", "git_rev": "r", "host": "h", "quick": false, "created_ns": 0, "kernels": []}|};
  reject "missing suite" {|{"schema_version": 1, "git_rev": "r", "host": "h", "quick": false, "created_ns": 0, "kernels": []}|};
  reject "kernels not a list" {|{"schema_version": 1, "suite": "x", "git_rev": "r", "host": "h", "quick": false, "created_ns": 0, "kernels": 3}|};
  check_bool "load of missing file errors" true
    (match Baseline.load "/nonexistent/BENCH_x.json" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Compare verdicts                                                    *)
(* ------------------------------------------------------------------ *)

let baseline_of kernels =
  {
    Baseline.meta =
      { Baseline.suite = "experiments"; git_rev = "base"; host = "h"; quick = false; created_ns = 0 };
    kernels;
  }

let test_compare_verdicts () =
  let base = baseline_of [ result "a" 100.0 (98.0, 102.0) ] in
  let verdict cur =
    let c = Compare.run ~threshold:0.25 ~baseline:base ~current:(baseline_of [ cur ]) in
    match c.Compare.entries with
    | [ e ] -> e.Compare.verdict
    | _ -> Alcotest.fail "expected exactly one compared kernel"
  in
  check_bool "identical is unchanged" true (verdict (result "a" 100.0 (98.0, 102.0)) = Compare.Unchanged);
  check_bool "2x slower regresses" true (verdict (result "a" 200.0 (195.0, 205.0)) = Compare.Regressed);
  check_bool "2x faster improves" true (verdict (result "a" 50.0 (48.0, 52.0)) = Compare.Improved);
  check_bool "within threshold unchanged" true
    (verdict (result "a" 115.0 (113.0, 117.0)) = Compare.Unchanged);
  (* big relative move but overlapping CIs: still unchanged *)
  check_bool "ci overlap protects" true
    (verdict (result "a" 160.0 (99.0, 220.0)) = Compare.Unchanged);
  (* beyond threshold and separated, just barely *)
  check_bool "just past threshold regresses" true
    (verdict (result "a" 126.0 (124.0, 128.0)) = Compare.Regressed)

let test_compare_threshold () =
  let base = baseline_of [ result "a" 100.0 (99.9, 100.1) ] in
  let cur = baseline_of [ result "a" 140.0 (139.9, 140.1) ] in
  let with_threshold t =
    match (Compare.run ~threshold:t ~baseline:base ~current:cur).Compare.entries with
    | [ e ] -> e.Compare.verdict
    | _ -> Alcotest.fail "one entry expected"
  in
  check_bool "tight gate trips" true (with_threshold 0.10 = Compare.Regressed);
  check_bool "loose gate passes" true (with_threshold 0.50 = Compare.Unchanged)

let test_compare_missing_added () =
  let base = baseline_of [ result "a" 100.0 (98.0, 102.0); result "gone" 10.0 (9.0, 11.0) ] in
  let cur = baseline_of [ result "a" 100.0 (98.0, 102.0); result "fresh" 20.0 (19.0, 21.0) ] in
  let c = Compare.run ~threshold:0.25 ~baseline:base ~current:cur in
  check_bool "missing tracked" true (c.Compare.missing = [ "gone" ]);
  check_bool "added tracked" true (c.Compare.added = [ "fresh" ]);
  check_bool "a kernel vanishing fails the gate" false (Compare.gate_passes c);
  let clean = Compare.run ~threshold:0.25 ~baseline:(baseline_of [ result "a" 100.0 (98.0, 102.0) ])
      ~current:cur
  in
  check_bool "added alone passes the gate" true (Compare.gate_passes clean);
  check_int "delta pct" 0
    (int_of_float (List.hd (Compare.run ~threshold:0.25 ~baseline:base ~current:cur).Compare.entries).Compare.delta_pct)

(* ------------------------------------------------------------------ *)
(* Suite registration                                                  *)
(* ------------------------------------------------------------------ *)

let test_suite_lookup () =
  let ks =
    [
      Suite.kernel ~suite:"experiments" "alpha" (fun () -> 1);
      Suite.kernel ~suite:"experiments" "beta" (fun () -> 2);
      Suite.kernel ~suite:"ablations" "gamma" (fun () -> 3);
    ]
  in
  check_bool "find hits" true (Suite.find "alpha" ks <> None);
  check_bool "find is case-insensitive" true (Suite.find "ALPHA" ks <> None);
  check_bool "find misses" true (Suite.find "delta" ks = None);
  check_bool "suites in order" true (Suite.suites ks = [ "experiments"; "ablations" ])

let test_suite_run_groups () =
  let ks =
    [
      Suite.kernel ~suite:"g1" ~items:10 "one" (fun () -> ());
      Suite.kernel ~suite:"g2" "two" (fun () -> ());
      Suite.kernel ~suite:"g1" "three" (fun () -> ());
    ]
  in
  let grouped = Suite.run ~filter:(fun n -> n <> "three") Measure.smoke ks in
  check_int "two groups" 2 (List.length grouped);
  (match grouped with
  | [ ("g1", [ r ]); ("g2", [ _ ]) ] ->
    check_bool "name" true (r.Suite.name = "one");
    check_int "items kept" 10 r.Suite.items;
    check_bool "throughput positive" true (r.Suite.stats.Suite.items_per_sec > 0.0)
  | _ -> Alcotest.fail "grouping mismatch");
  (* bootstrap seeding is per-name: stats of a degenerate 1-sample run
     are its sample with a collapsed CI *)
  match grouped with
  | ("g1", [ r ]) :: _ ->
    check_float "collapsed ci" r.Suite.stats.Suite.median_ns r.Suite.stats.Suite.ci_low_ns
  | _ -> Alcotest.fail "missing g1"

(* ------------------------------------------------------------------ *)
(* Bench completeness: every experiment source has a kernel            *)
(* ------------------------------------------------------------------ *)

let test_bench_covers_experiments () =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "lib" "experiments");
      Filename.concat "lib" "experiments";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail "lib/experiments not found from test cwd"
  | Some dir ->
    let prefix_of_file f =
      (* "e06_prune2_random.ml" -> "e6_" *)
      if String.length f > 3 && f.[0] = 'e' && Filename.check_suffix f ".ml" then
        match int_of_string_opt (String.sub f 1 2) with
        | Some n -> Some (Printf.sprintf "e%d_" n)
        | None -> None
      else None
    in
    let prefixes = Sys.readdir dir |> Array.to_list |> List.filter_map prefix_of_file in
    check_bool "found experiment sources" true (prefixes <> []);
    let experiment_kernels =
      List.filter (fun (k : Suite.kernel) -> k.Suite.suite = Kernels.experiments) Kernels.all
    in
    let has_kernel prefix =
      List.exists
        (fun (k : Suite.kernel) ->
          String.length k.Suite.name >= String.length prefix
          && String.sub k.Suite.name 0 (String.length prefix) = prefix)
        experiment_kernels
    in
    List.iter
      (fun p ->
        if not (has_kernel p) then
          Alcotest.failf "experiment source %s* has no registered bench kernel" p)
      prefixes;
    check_int "one bench kernel per experiment source" (List.length prefixes)
      (List.length experiment_kernels);
    (* and the registry agrees with the bench suite *)
    check_int "kernel count matches Registry.all"
      (List.length Fn_experiments.Registry.all)
      (List.length experiment_kernels)

let test_kernel_names_unique () =
  let names = List.map (fun (k : Suite.kernel) -> k.Suite.name) Kernels.all in
  let sorted = List.sort_uniq String.compare names in
  check_int "no duplicate kernel names" (List.length names) (List.length sorted)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fn_bench"
    [
      ( "stats",
        [
          case "median" test_median;
          case "mad" test_mad;
          case "trimmed mean" test_trimmed_mean;
          case "quantile" test_quantile;
          case "bootstrap deterministic" test_bootstrap_deterministic;
        ] );
      ( "measure",
        [ case "smoke shape" test_measure_smoke; case "quick bounds" test_measure_quick_bounds ] );
      ( "baseline",
        [
          case "json roundtrip" test_json_roundtrip;
          case "file roundtrip" test_json_file_roundtrip;
          case "rejects bad input" test_json_rejects;
        ] );
      ( "compare",
        [
          case "verdicts" test_compare_verdicts;
          case "threshold" test_compare_threshold;
          case "missing and added" test_compare_missing_added;
        ] );
      ( "suite",
        [
          case "lookup" test_suite_lookup;
          case "run groups" test_suite_run_groups;
          case "covers all experiments" test_bench_covers_experiments;
          case "unique names" test_kernel_names_unique;
        ] );
    ]
