open Fn_graph
open Testutil

let test_empty_and_full () =
  let e = Bitset.create 100 in
  check_int "empty cardinal" 0 (Bitset.cardinal e);
  check_bool "is_empty" true (Bitset.is_empty e);
  let f = Bitset.create_full 100 in
  check_int "full cardinal" 100 (Bitset.cardinal f);
  check_bool "full not empty" false (Bitset.is_empty f);
  check_int "universe" 100 (Bitset.universe f)

let test_word_boundaries () =
  (* exercise sizes around the 63-bit word boundary *)
  List.iter
    (fun n ->
      let f = Bitset.create_full n in
      check_int (Printf.sprintf "full cardinal n=%d" n) n (Bitset.cardinal f);
      let c = Bitset.complement f in
      check_int (Printf.sprintf "complement of full n=%d" n) 0 (Bitset.cardinal c);
      for v = 0 to n - 1 do
        if not (Bitset.mem f v) then Alcotest.failf "missing %d of %d" v n
      done)
    [ 1; 62; 63; 64; 126; 127 ]

let test_add_remove () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 7;
  Bitset.add s 3;
  check_int "cardinal after dup add" 2 (Bitset.cardinal s);
  check_bool "mem 3" true (Bitset.mem s 3);
  check_bool "mem 4" false (Bitset.mem s 4);
  Bitset.remove s 3;
  check_bool "removed" false (Bitset.mem s 3);
  Bitset.set s 4 true;
  check_bool "set true" true (Bitset.mem s 4);
  Bitset.set s 4 false;
  check_bool "set false" false (Bitset.mem s 4)

let test_bounds_checked () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of universe")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of universe")
    (fun () -> Bitset.add s 5)

let test_iter_order () =
  let s = Bitset.of_list 200 [ 5; 190; 63; 64; 0 ] in
  check_bool "to_list sorted" true (Bitset.to_list s = [ 0; 5; 63; 64; 190 ])

let test_set_operations () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  check_bool "union" true (Bitset.to_list u = [ 1; 2; 3; 4 ]);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  check_bool "inter" true (Bitset.to_list i = [ 3 ]);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  check_bool "diff" true (Bitset.to_list d = [ 1; 2 ]);
  check_bool "subset yes" true (Bitset.subset i a);
  check_bool "subset no" false (Bitset.subset a b);
  check_bool "disjoint no" false (Bitset.disjoint a b);
  check_bool "disjoint yes" true (Bitset.disjoint i (Bitset.of_list 10 [ 7 ]))

let test_choose () =
  check_bool "choose empty" true (Bitset.choose (Bitset.create 4) = None);
  check_bool "choose smallest" true (Bitset.choose (Bitset.of_list 9 [ 8; 2; 5 ]) = Some 2)

let test_universe_mismatch () =
  let a = Bitset.create 4 and b = Bitset.create 5 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: universe mismatch") (fun () ->
      Bitset.union_into a b)

let gen_int_set =
  QCheck2.Gen.(
    int_range 1 150 >>= fun n ->
    list_size (int_range 0 60) (int_range 0 (n - 1)) >>= fun xs -> return (n, xs))

let prop_roundtrip =
  prop "of_list/to_list is sorted dedup" gen_int_set (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      Bitset.to_list s = List.sort_uniq Int.compare xs)

let prop_complement_involution =
  prop "complement twice is identity" gen_int_set (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      Bitset.equal s (Bitset.complement (Bitset.complement s)))

let prop_cardinal_union_inter =
  prop "inclusion-exclusion" ~count:200
    QCheck2.Gen.(pair gen_int_set gen_int_set)
    (fun ((n1, xs), (n2, ys)) ->
      let n = max n1 n2 in
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let u = Bitset.copy a in
      Bitset.union_into u b;
      let i = Bitset.copy a in
      Bitset.inter_into i b;
      Bitset.cardinal u + Bitset.cardinal i = Bitset.cardinal a + Bitset.cardinal b)

let prop_fold_counts =
  prop "fold visits cardinal elements" gen_int_set (fun (n, xs) ->
      let s = Bitset.of_list n xs in
      Bitset.fold (fun _ acc -> acc + 1) s 0 = Bitset.cardinal s)

let test_next_member () =
  let s = Bitset.of_list 200 [ 0; 5; 62; 63; 64; 126; 199 ] in
  check_bool "from 0" true (Bitset.next_member s 0 = Some 0);
  check_bool "past a member" true (Bitset.next_member s 1 = Some 5);
  check_bool "word boundary" true (Bitset.next_member s 63 = Some 63);
  check_bool "across words" true (Bitset.next_member s 65 = Some 126);
  check_bool "last" true (Bitset.next_member s 199 = Some 199);
  check_bool "exhausted" true (Bitset.next_member s 200 = None);
  check_bool "empty" true (Bitset.next_member (Bitset.create 64) 0 = None);
  (* scanning by next_member enumerates exactly the members in order *)
  let rec scan from acc =
    match Bitset.next_member s from with
    | None -> List.rev acc
    | Some v -> scan (v + 1) (v :: acc)
  in
  check_bool "scan = to_list" true (scan 0 [] = Bitset.to_list s)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          case "empty and full" test_empty_and_full;
          case "word boundaries" test_word_boundaries;
          case "add/remove" test_add_remove;
          case "bounds checked" test_bounds_checked;
          case "iter order" test_iter_order;
          case "set operations" test_set_operations;
          case "choose" test_choose;
          case "next_member" test_next_member;
          case "universe mismatch" test_universe_mismatch;
        ] );
      ( "properties",
        [
          prop_roundtrip;
          prop_complement_involution;
          prop_cardinal_union_inter;
          prop_fold_counts;
        ] );
    ]
