(* End-to-end tests of the command-line binary: spawn it, capture
   stdout, compare.  The test runs from _build/default/test, so the
   binary sits at ../bin/faultnet_cli.exe. *)

open Testutil

let binary =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec` *)
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "faultnet_cli.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "faultnet_cli.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_cli args =
  let out = Filename.temp_file "faultnet_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" binary args out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, String.trim text)

let test_gen_mesh () =
  let code, out = run_cli "gen -t mesh:3x3" in
  check_int "exit" 0 code;
  let lines = String.split_on_char '\n' out in
  check_bool "header" true (List.hd lines = "# nodes 9 edges 12");
  check_int "12 edges + header" 13 (List.length lines)

let test_expansion_exact () =
  let code, out = run_cli "expansion -t mesh:4x4 --objective edge" in
  check_int "exit" 0 code;
  check_bool "reports exact value" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> l = "edge expansion (exact): 0.500000 (witness side 8)"))

let test_connectivity () =
  let code, out = run_cli "connectivity -t hypercube:3" in
  check_int "exit" 0 code;
  check_bool "edge connectivity line" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> l = "edge connectivity: 3 (min degree 3)"))

let test_file_roundtrip () =
  let path = Filename.temp_file "faultnet" ".edges" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let code, _ = run_cli (Printf.sprintf "gen -t cycle:5 -o %s" path) in
      check_int "gen exit" 0 code;
      let code, out = run_cli (Printf.sprintf "expansion -i %s" path) in
      check_int "expansion exit" 0 code;
      check_bool "cycle value" true
        (String.split_on_char '\n' out
        |> List.exists (fun l -> l = "node expansion (exact): 1.000000 (witness side 2)")))

let test_unknown_experiment_fails () =
  let code, out = run_cli "experiment E99" in
  check_bool "nonzero exit" true (code <> 0);
  check_bool "mentions the id" true
    (let needle = "E99" in
     let nl = String.length needle and sl = String.length out in
     let rec scan i = i + nl <= sl && (String.sub out i nl = needle || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* lint binary: --only / --explain                                     *)
(* ------------------------------------------------------------------ *)

let lint_binary =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "lint.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "lint.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_lint args =
  let out = Filename.temp_file "fn_lint_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" lint_binary args out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, String.trim text)

let contains hay needle =
  let nl = String.length needle and sl = String.length hay in
  let rec scan i = i + nl <= sl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

(* A scratch tree holding one file that violates two scope-aware rules:
   the closure handed to Par.map mutates a captured ref and draws from a
   shared rng. *)
let with_bad_tree f =
  let dir = Filename.temp_file "fn_lint_tree" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "sample.ml" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists file then Sys.remove file;
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let oc = open_out file in
      output_string oc
        "let f rng xs =\n\
        \  let hits = ref 0 in\n\
        \  Par.map (fun x -> hits := !hits + Fn_prng.Rng.int rng x) xs\n";
      close_out oc;
      f dir)

let test_lint_only () =
  with_bad_tree (fun dir ->
      let code, out = run_lint (Printf.sprintf "--root %s sample.ml" dir) in
      check_int "all rules: findings exit 1" 1 code;
      check_bool "all rules: capture finding" true
        (contains out "par-capture-mutation");
      check_bool "all rules: rng finding" true (contains out "rng-unsplit-in-par");
      let code, out =
        run_lint
          (Printf.sprintf "--root %s --only rng-unsplit-in-par sample.ml" dir)
      in
      check_int "--only: findings exit 1" 1 code;
      check_bool "--only: rng finding kept" true
        (contains out "rng-unsplit-in-par");
      check_bool "--only: capture finding filtered" false
        (contains out "par-capture-mutation");
      let code, out =
        run_lint
          (Printf.sprintf "--root %s --only dls-outside-obs sample.ml" dir)
      in
      check_int "--only non-matching rule: clean exit" 0 code;
      check_bool "--only non-matching rule: no output" true (out = ""))

let test_lint_explain () =
  let code, out = run_lint "--explain par-capture-mutation" in
  check_int "explain exit" 0 code;
  check_bool "explain names the rule" true (contains out "par-capture-mutation");
  check_bool "explain shows severity" true (contains out "error");
  check_bool "explain shows suppression template" true (contains out "lint: allow")

let test_lint_unknown_rule () =
  let code, out = run_lint "--only no-such-rule" in
  check_int "unknown rule exit" 2 code;
  check_bool "unknown rule message" true (contains out "unknown rule");
  let code, _ = run_lint "--explain no-such-rule" in
  check_int "unknown rule via --explain" 2 code

let test_determinism_across_runs () =
  let _, a = run_cli "report -t torus:8x8 --fault-p 0.1 --seed 5" in
  let _, b = run_cli "report -t torus:8x8 --fault-p 0.1 --seed 5" in
  check_bool "same seed, same report" true (a = b);
  let _, c = run_cli "report -t torus:8x8 --fault-p 0.1 --seed 6" in
  check_bool "different seed, different faults" true (a <> c)

let () =
  if not (Sys.file_exists binary) then begin
    print_endline "faultnet_cli.exe not found next to the test; skipping CLI suite";
    exit 0
  end;
  Alcotest.run "cli"
    [
      ( "end-to-end",
        [
          case "gen mesh" test_gen_mesh;
          case "exact expansion" test_expansion_exact;
          case "connectivity" test_connectivity;
          case "file roundtrip" test_file_roundtrip;
          case "unknown experiment" test_unknown_experiment_fails;
          case "determinism" test_determinism_across_runs;
        ] );
      ( "lint",
        [
          case "--only filters rules" test_lint_only;
          case "--explain describes a rule" test_lint_explain;
          case "unknown rule exits 2" test_lint_unknown_rule;
        ] );
    ]
