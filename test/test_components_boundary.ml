open Fn_graph
open Testutil

let path5 = Fn_topology.Basic.path 5
let two_triangles = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ]

let test_components_connected () =
  let c = Components.compute path5 in
  check_int "one component" 1 c.Components.count;
  check_int "size" 5 (Components.largest_size c)

let test_components_disconnected () =
  let c = Components.compute two_triangles in
  check_int "two components" 2 c.Components.count;
  check_int "largest" 3 (Components.largest_size c);
  check_bool "histogram" true (Components.size_histogram c = [ (3, 2) ])

let test_components_masked () =
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let c = Components.compute ~alive path5 in
  check_int "split by dead node" 2 c.Components.count;
  check_int "dead label" (-1) c.Components.labels.(2)

let test_gamma () =
  check_float "full gamma" 1.0 (Components.gamma path5);
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  check_float "masked gamma" 0.4 (Components.gamma ~alive path5);
  check_float "empty graph" 0.0 (Components.gamma (Graph.empty 0))

let test_members_and_largest_members () =
  let c = Components.compute two_triangles in
  let m = Components.members c 0 in
  check_int "members size" 3 (Bitset.cardinal m);
  let lm = Components.largest_members path5 in
  check_int "largest members" 5 (Bitset.cardinal lm);
  let empty_alive = Bitset.create 5 in
  let lm = Components.largest_members ~alive:empty_alive path5 in
  check_int "no alive -> empty" 0 (Bitset.cardinal lm)

let test_is_connected () =
  check_bool "path" true (Components.is_connected path5);
  check_bool "two triangles" false (Components.is_connected two_triangles);
  check_bool "empty alive counts as connected" true
    (Components.is_connected ~alive:(Bitset.create 5) path5);
  check_bool "empty graph" true (Components.is_connected (Graph.empty 0))

(* ---- boundaries ---- *)

let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4

let test_node_boundary_path () =
  let u = Bitset.of_list 5 [ 0; 1 ] in
  let b = Boundary.node_boundary path5 u in
  check_bool "boundary is {2}" true (Bitset.to_list b = [ 2 ]);
  check_int "size" 1 (Boundary.node_boundary_size path5 u)

let test_node_boundary_mesh_corner () =
  let u = Bitset.of_list 16 [ 0 ] in
  check_int "corner has 2 neighbours" 2 (Boundary.node_boundary_size mesh4 u);
  let u = Bitset.of_list 16 [ 5 ] in
  check_int "interior has 4" 4 (Boundary.node_boundary_size mesh4 u)

let test_edge_boundary () =
  (* left 2x4 half of the 4x4 mesh: 4 crossing edges *)
  let u = Bitset.of_list 16 [ 0; 1; 4; 5; 8; 9; 12; 13 ] in
  check_int "half mesh cut" 4 (Boundary.edge_boundary_size mesh4 u);
  let pairs = Boundary.edge_boundary mesh4 u in
  check_int "edge list length" 4 (List.length pairs);
  List.iter
    (fun (inside, outside) ->
      check_bool "inside in u" true (Bitset.mem u inside);
      check_bool "outside not in u" false (Bitset.mem u outside))
    pairs

let test_internal_edges () =
  let u = Bitset.of_list 16 [ 0; 1; 4; 5 ] in
  check_int "2x2 block internal edges" 4 (Boundary.internal_edge_count mesh4 u)

let test_masked_boundary () =
  let u = Bitset.of_list 5 [ 0; 1 ] in
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  check_int "dead boundary node not counted" 0 (Boundary.node_boundary_size ~alive path5 u);
  check_int "dead edge endpoint not counted" 0 (Boundary.edge_boundary_size ~alive path5 u)

let test_expansions () =
  let u = Bitset.of_list 5 [ 0; 1 ] in
  check_float "node expansion" 0.5 (Boundary.node_expansion path5 u);
  check_float "edge expansion" 0.5 (Boundary.edge_expansion path5 u);
  Alcotest.check_raises "empty set" (Invalid_argument "Boundary.node_expansion: empty set")
    (fun () -> ignore (Boundary.node_expansion path5 (Bitset.create 5)));
  Alcotest.check_raises "full set" (Invalid_argument "Boundary.edge_expansion: empty side")
    (fun () -> ignore (Boundary.edge_expansion path5 (Bitset.create_full 5)))

let prop_boundary_disjoint_from_set =
  prop "node boundary is outside the set"
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, u) ->
      let b = Boundary.node_boundary g u in
      Bitset.disjoint b u)

let prop_edge_boundary_symmetric =
  prop "edge boundary of U equals edge boundary of complement"
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, u) ->
      Boundary.edge_boundary_size g u = Boundary.edge_boundary_size g (Bitset.complement u))

let prop_boundary_le_edge_boundary =
  prop "node boundary <= edge boundary"
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, u) -> Boundary.node_boundary_size g u <= Boundary.edge_boundary_size g u)

let prop_gamma_bounds =
  prop "gamma in [0,1]" (Testutil.gen_any_graph ~max_n:12 ()) (fun g ->
      let gm = Components.gamma g in
      gm >= 0.0 && gm <= 1.0)

(* ---- differential: generation-stamped Scratch vs plain counts ----
   A single scratch is reused across every query (the Prune access
   pattern); each result must equal the allocating implementation. *)

let gen_graph_sets_mask =
  let open QCheck2.Gen in
  Testutil.gen_connected_graph ~max_n:10 () >>= fun g ->
  let n = Graph.num_nodes g in
  let gen_mask =
    int_range 1 ((1 lsl n) - 1) >>= fun m ->
    let s = Bitset.create n in
    for v = 0 to n - 1 do
      if (m lsr v) land 1 = 1 then Bitset.add s v
    done;
    return s
  in
  list_size (int_range 1 6) gen_mask >>= fun sets ->
  gen_mask >>= fun alive -> return (g, sets, alive)

let prop_scratch_node_boundary_matches =
  prop "reused Scratch node counts equal fresh node_boundary_size" ~count:200
    gen_graph_sets_mask (fun (g, sets, alive) ->
      let scratch = Boundary.Scratch.create (Graph.num_nodes g) in
      List.for_all
        (fun u ->
          Boundary.Scratch.node_boundary_size scratch g u = Boundary.node_boundary_size g u
          && Boundary.Scratch.node_boundary_size scratch ~alive g u
             = Boundary.node_boundary_size ~alive g u)
        sets)

let prop_scratch_edge_boundary_matches =
  prop "reused Scratch edge counts equal fresh edge_boundary_size" ~count:200
    gen_graph_sets_mask (fun (g, sets, alive) ->
      let scratch = Boundary.Scratch.create (Graph.num_nodes g) in
      List.for_all
        (fun u ->
          Boundary.Scratch.edge_boundary_size scratch g u = Boundary.edge_boundary_size g u
          && Boundary.Scratch.edge_boundary_size scratch ~alive g u
             = Boundary.edge_boundary_size ~alive g u)
        sets)

let test_scratch_universe_check () =
  let scratch = Boundary.Scratch.create 4 in
  Alcotest.check_raises "universe mismatch"
    (Invalid_argument "Boundary.Scratch: universe size mismatch") (fun () ->
      ignore (Boundary.Scratch.node_boundary_size scratch path5 (Bitset.of_list 5 [ 0 ])))

let () =
  Alcotest.run "components_boundary"
    [
      ( "components",
        [
          case "connected" test_components_connected;
          case "disconnected" test_components_disconnected;
          case "masked" test_components_masked;
          case "gamma" test_gamma;
          case "members" test_members_and_largest_members;
          case "is_connected" test_is_connected;
        ] );
      ( "boundary",
        [
          case "path node boundary" test_node_boundary_path;
          case "mesh node boundary" test_node_boundary_mesh_corner;
          case "edge boundary" test_edge_boundary;
          case "internal edges" test_internal_edges;
          case "masked" test_masked_boundary;
          case "expansions" test_expansions;
        ] );
      ( "properties",
        [
          prop_boundary_disjoint_from_set;
          prop_edge_boundary_symmetric;
          prop_boundary_le_edge_boundary;
          prop_gamma_bounds;
        ] );
      ( "scratch",
        [
          case "universe check" test_scratch_universe_check;
          prop_scratch_node_boundary_matches;
          prop_scratch_edge_boundary_matches;
        ] );
    ]
