open Fn_graph
open Fn_expansion
open Testutil

let rng () = Fn_prng.Rng.create 31415

let test_exact_complete () =
  let c = Exact.node_expansion (Fn_topology.Basic.complete 8) in
  check_float "K8 node expansion" (Analytic.complete_node_exact 8) c.Cut.value;
  check_int "witness half" 4 (Bitset.cardinal c.Cut.set)

let test_exact_cycle () =
  let c = Exact.node_expansion (Fn_topology.Basic.cycle 10) in
  check_float "C10" (Analytic.cycle_node_exact 10) c.Cut.value

let test_exact_path () =
  let c = Exact.node_expansion (Fn_topology.Basic.path 9) in
  check_float "P9" (Analytic.path_node_exact 9) c.Cut.value

let test_exact_star () =
  (* removing the hub isolates leaves: best cut is floor(n/2) leaves
     with boundary {hub} *)
  let c = Exact.node_expansion (Fn_topology.Basic.star 9) in
  check_float "star" 0.25 c.Cut.value

let test_exact_barbell () =
  (* barbell bottleneck: one clique side, boundary is the single
     bridge endpoint *)
  let c = Exact.node_expansion (Fn_topology.Basic.barbell 5) in
  check_float "barbell" 0.2 c.Cut.value;
  let e = Exact.edge_expansion (Fn_topology.Basic.barbell 5) in
  check_float "barbell edge" 0.2 e.Cut.value

let test_exact_mesh_edge () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  let e = Exact.edge_expansion g in
  check_float "4x4 mesh edge expansion" 0.5 e.Cut.value

let test_exact_hypercube_edge () =
  let g = Fn_topology.Hypercube.graph 3 in
  let e = Exact.edge_expansion g in
  check_float "Q3 edge expansion" (Analytic.hypercube_edge_exact 3) e.Cut.value

let test_exact_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let c = Exact.node_expansion g in
  check_float "disconnected" 0.0 c.Cut.value

let test_exact_limits () =
  Alcotest.check_raises "too small" (Invalid_argument "Exact: need at least 2 nodes")
    (fun () -> ignore (Exact.node_expansion (Graph.empty 1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Exact: graph too large for exhaustive search") (fun () ->
      ignore (Exact.node_expansion (Fn_topology.Basic.cycle 30)))

let test_cut_make_and_better () =
  let g = Fn_topology.Basic.path 4 in
  let u = Bitset.of_list 4 [ 0 ] in
  let c = Cut.make g Cut.Node u in
  check_float "value" 1.0 c.Cut.value;
  let u2 = Bitset.of_list 4 [ 0; 1 ] in
  let c2 = Cut.make g Cut.Node u2 in
  check_float "better value" 0.5 (Cut.better c c2).Cut.value

let test_sweep_finds_mesh_cut () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  let c = Sweep.spectral_cut g Cut.Edge in
  check_float "sweep finds the optimal mesh cut" 0.5 c.Cut.value

let test_sweep_arity_checks () =
  let g = Fn_topology.Basic.path 4 in
  Alcotest.check_raises "score length"
    (Invalid_argument "Sweep.best_prefix: score length mismatch") (fun () ->
      ignore (Sweep.best_prefix g ~score:[| 0.0 |] Cut.Node))

let test_local_search_never_worse () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  (* start from a bad cut: scattered nodes *)
  let bad = Cut.make g Cut.Node (Bitset.of_list 16 [ 0; 7; 10 ]) in
  let improved = Local_search.improve g bad in
  check_bool "improved or equal" true (improved.Cut.value <= bad.Cut.value +. 1e-12)

let test_estimate_exact_small () =
  let est = Estimate.run (Fn_topology.Basic.cycle 12) Cut.Node in
  check_bool "exact flag" true est.Estimate.exact;
  check_float "C12 value" (Analytic.cycle_node_exact 12) est.Estimate.value

let test_estimate_disconnected () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 3); (3, 4) ] in
  let est = Estimate.run g Cut.Node in
  check_float "zero" 0.0 est.Estimate.value;
  check_int "small component witness" 2 (Bitset.cardinal est.Estimate.witness)

let test_estimate_heuristic_on_larger () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let est = Estimate.run ~rng:(rng ()) g Cut.Edge in
  check_bool "not exact" false est.Estimate.exact;
  (* true edge expansion of the 8x8 mesh is 8/32 = 0.25.  The square
     mesh's lambda2 is doubly degenerate (row/column modes), so the
     sweep may return a staircase cut; require the portfolio to land
     within 60% of optimal, and never below it. *)
  check_bool "upper bound" true (est.Estimate.value >= 0.25 -. 1e-9);
  check_bool "within 1.6x of optimal" true (est.Estimate.value <= 0.25 *. 1.6 +. 1e-9);
  match est.Estimate.lower with
  | Some lb -> check_bool "lower bound below value" true (lb <= est.Estimate.value +. 1e-9)
  | None -> Alcotest.fail "edge objective should produce a lower bound"

let test_estimate_alive_mask () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  (* keep only the left 2x4 half alive: a 2x4 mesh remains *)
  let alive = Bitset.of_list 16 [ 0; 1; 4; 5; 8; 9; 12; 13 ] in
  let est = Estimate.run ~alive g Cut.Edge in
  check_bool "value positive" true (est.Estimate.value > 0.0);
  check_bool "witness inside alive" true (Bitset.subset est.Estimate.witness alive)

let test_estimate_requires_two () =
  Alcotest.check_raises "singleton" (Invalid_argument "Estimate.run: need at least 2 alive nodes")
    (fun () -> ignore (Estimate.run (Graph.empty 1) Cut.Node))

let test_edge_profile_path () =
  (* prefixes of the path have exactly one crossing edge *)
  let profile = Exact.edge_isoperimetric_profile (Fn_topology.Basic.path 10) in
  Array.iter (fun b -> check_int "path prefix cut" 1 b) profile

let test_edge_profile_hypercube () =
  (* Harper: |U| = 2^s subcubes are optimal; for Q3 the known minima
     at sizes 1..4 are 3, 4, 5, 4 *)
  let profile = Exact.edge_isoperimetric_profile (Fn_topology.Hypercube.graph 3) in
  check_bool "Q3 edge profile" true (profile = [| 3; 4; 5; 4 |])

let prop_spectral_lower_sound =
  prop "certified lower bound never exceeds exact edge expansion" ~count:50
    (Testutil.gen_connected_graph ~max_n:11 ())
    (fun g ->
      let exact = (Exact.edge_expansion g).Cut.value in
      let est = Estimate.run ~force_heuristic:true ~rng:(rng ()) g Cut.Edge in
      match est.Estimate.lower with
      | None -> false
      | Some lb -> lb <= exact +. 1e-6)

let prop_heuristic_upper_bounds_exact =
  prop "heuristic value >= exact value" ~count:60
    (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let exact = (Exact.node_expansion g).Cut.value in
      let est = Estimate.run ~force_heuristic:true ~rng:(rng ()) g Cut.Node in
      est.Estimate.value >= exact -. 1e-9)

let prop_witness_is_valid_cut =
  prop "witness evaluates to the reported value" ~count:60
    (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let est = Estimate.run ~force_heuristic:true ~rng:(rng ()) g Cut.Edge in
      abs_float (Cut.value_of g Cut.Edge est.Estimate.witness -. est.Estimate.value) < 1e-9)

let test_estimate_domains_one_is_default () =
  (* ~domains:1 must be the same sequential code path as the default *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let a = Estimate.run ~rng:(rng ()) g Cut.Edge in
  let b = Estimate.run ~rng:(rng ()) ~domains:1 g Cut.Edge in
  check_bool "value bits" true
    (Int64.equal (Int64.bits_of_float a.Estimate.value) (Int64.bits_of_float b.Estimate.value));
  check_bool "witness" true (Bitset.equal a.Estimate.witness b.Estimate.witness);
  check_bool "exact flag" true (a.Estimate.exact = b.Estimate.exact)

let test_estimate_parallel_independent_of_domain_count () =
  (* domains>1 is one fixed algorithm variant: the result depends on
     turning parallelism on, never on how many domains run it *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let a = Estimate.run ~rng:(rng ()) ~domains:2 g Cut.Edge in
  let b = Estimate.run ~rng:(rng ()) ~domains:4 g Cut.Edge in
  let c = Estimate.run ~rng:(rng ()) ~domains:2 g Cut.Edge in
  check_bool "2 vs 4 value bits" true
    (Int64.equal (Int64.bits_of_float a.Estimate.value) (Int64.bits_of_float b.Estimate.value));
  check_bool "2 vs 4 witness" true (Bitset.equal a.Estimate.witness b.Estimate.witness);
  check_bool "repeatable" true
    (Int64.equal (Int64.bits_of_float a.Estimate.value) (Int64.bits_of_float c.Estimate.value));
  (* and it is still a sound upper bound with a consistent witness *)
  check_bool "witness value" true
    (abs_float (Cut.value_of g Cut.Edge a.Estimate.witness -. a.Estimate.value) < 1e-9)

let prop_analytic_formulas_guard =
  prop "analytic guards reject bad input" (QCheck2.Gen.int_range (-3) 1) (fun n ->
      (try
         ignore (Analytic.complete_node_exact n);
         false
       with Invalid_argument _ -> true)
      && (try
            ignore (Analytic.cycle_node_exact n);
            false
          with Invalid_argument _ -> true))

let () =
  Alcotest.run "expansion"
    [
      ( "exact",
        [
          case "complete" test_exact_complete;
          case "cycle" test_exact_cycle;
          case "path" test_exact_path;
          case "star" test_exact_star;
          case "barbell" test_exact_barbell;
          case "mesh edge" test_exact_mesh_edge;
          case "hypercube edge" test_exact_hypercube_edge;
          case "disconnected" test_exact_disconnected;
          case "limits" test_exact_limits;
        ] );
      ( "heuristics",
        [
          case "cut make/better" test_cut_make_and_better;
          case "sweep mesh cut" test_sweep_finds_mesh_cut;
          case "sweep arity" test_sweep_arity_checks;
          case "local search monotone" test_local_search_never_worse;
          case "estimate exact small" test_estimate_exact_small;
          case "estimate disconnected" test_estimate_disconnected;
          case "estimate mesh 8x8" test_estimate_heuristic_on_larger;
          case "estimate alive mask" test_estimate_alive_mask;
          case "estimate needs 2 nodes" test_estimate_requires_two;
          case "estimate domains=1 is default" test_estimate_domains_one_is_default;
          case "estimate parallel domain-count invariant"
            test_estimate_parallel_independent_of_domain_count;
          case "edge profile path" test_edge_profile_path;
          case "edge profile hypercube" test_edge_profile_hypercube;
        ] );
      ( "properties",
        [
          prop_heuristic_upper_bounds_exact;
          prop_witness_is_valid_cut;
          prop_analytic_formulas_guard;
          prop_spectral_lower_sound;
        ]
      );
    ]
