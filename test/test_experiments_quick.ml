(* End-to-end: the fast paper-validation experiments must pass their
   own checks in quick mode.  The slow ones (E1, E4, E6, E8, E9) run
   from bin/experiments; here we pin the cheap ones into the test
   suite so a regression in any layer breaks `dune runtest`. *)

open Testutil

let run_and_check id =
  match Fn_experiments.Registry.find id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some e ->
    let outcome = e.Fn_experiments.Registry.run (Fn_experiments.Workload.config ~quick:true ~seed:4242 ()) in
    List.iter
      (fun (name, ok) ->
        if not ok then Alcotest.failf "%s check failed: %s" id name)
      outcome.Fn_experiments.Outcome.checks

let test_registry_complete () =
  check_int "fourteen experiments" 14 (List.length Fn_experiments.Registry.all);
  List.iteri
    (fun i e ->
      let expected = Printf.sprintf "E%d" (i + 1) in
      if e.Fn_experiments.Registry.id <> expected then
        Alcotest.failf "expected %s at position %d" expected i)
    Fn_experiments.Registry.all;
  check_bool "case-insensitive lookup" true
    (match Fn_experiments.Registry.find "e7" with Some _ -> true | None -> false);
  check_bool "unknown" true (Fn_experiments.Registry.find "E15" = None)

(* Registry vs. the filesystem: every lib/experiments/e*.ml must be
   registered, so adding an experiment file without wiring it into
   Registry.all fails the suite.  The test runs from _build/default/test
   (the dune glob dep copies the sources next door). *)
let test_registry_covers_sources () =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "lib" "experiments");
      Filename.concat "lib" "experiments";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail "lib/experiments not found from test cwd"
  | Some dir ->
    let id_of_file f =
      (* "e07_chain_decay.ml" -> "E7"; "e12_x.ml" -> "E12" *)
      if String.length f > 3 && f.[0] = 'e' && Filename.check_suffix f ".ml" then
        match int_of_string_opt (String.sub f 1 2) with
        | Some n -> Some (Printf.sprintf "E%d" n)
        | None -> None
      else None
    in
    let ids = Sys.readdir dir |> Array.to_list |> List.filter_map id_of_file in
    check_bool "found experiment sources" true (ids <> []);
    List.iter
      (fun id ->
        if Fn_experiments.Registry.find id = None then
          Alcotest.failf "%s has a source file but is not in Registry.all" id)
      ids;
    check_int "one registry entry per source file"
      (List.length ids)
      (List.length Fn_experiments.Registry.all)

let test_outcome_render () =
  match Fn_experiments.Registry.find "E2" with
  | None -> Alcotest.fail "E2 missing"
  | Some e ->
    let o = e.Fn_experiments.Registry.run (Fn_experiments.Workload.config ~quick:true ~seed:1 ()) in
    let s = Fn_experiments.Outcome.render o in
    check_bool "mentions id" true (String.length s > 10 && String.sub s 4 2 = "E2")

let () =
  Alcotest.run "experiments_quick"
    [
      ( "registry",
        [
          case "complete" test_registry_complete;
          case "covers source files" test_registry_covers_sources;
          case "render" test_outcome_render;
        ] );
      ( "outcomes",
        [
          case "E2 chain expansion" (fun () -> run_and_check "E2");
          case "E3 chain attack" (fun () -> run_and_check "E3");
          case "E5 random chain" (fun () -> run_and_check "E5");
          case "E7 mesh span" (fun () -> run_and_check "E7");
          case "E10 span conjecture" (fun () -> run_and_check "E10");
          case "E11 routing" (fun () -> run_and_check "E11");
          case "E12 embedding" (fun () -> run_and_check "E12");
          case "E13 multibutterfly" (fun () -> run_and_check "E13");
          case "E14 transient churn" (fun () -> run_and_check "E14");
        ] );
    ]
