open Fn_graph
open Fn_faults
open Testutil

let rng () = Fn_prng.Rng.create 555
let mesh8, _ = Fn_topology.Mesh.cube ~d:2 ~side:8

let test_fault_set_basics () =
  let fs = Fault_set.of_faulty_list 10 [ 1; 3; 5 ] in
  check_int "count" 3 (Fault_set.count fs);
  check_int "alive" 7 (Fault_set.alive_count fs);
  check_bool "faulty member" true (Bitset.mem fs.Fault_set.faulty 3);
  check_bool "alive member" true (Bitset.mem fs.Fault_set.alive 0);
  check_bool "partition" true (Bitset.disjoint fs.Fault_set.faulty fs.Fault_set.alive)

let test_fault_set_none_union () =
  let none = Fault_set.none 10 in
  check_int "none" 0 (Fault_set.count none);
  let a = Fault_set.of_faulty_list 10 [ 1; 2 ] in
  let b = Fault_set.of_faulty_list 10 [ 2; 3 ] in
  let u = Fault_set.union a b in
  check_int "union count" 3 (Fault_set.count u)

let test_restrict_alive () =
  let fs = Fault_set.of_faulty_list 10 [ 0; 1 ] in
  let r = Fault_set.restrict_alive fs (Bitset.of_list 10 [ 0; 5 ]) in
  check_bool "restricted" true (Bitset.to_list r = [ 5 ])

let test_nodes_iid_extremes () =
  let r = rng () in
  let all = Random_faults.nodes_iid r mesh8 1.0 in
  check_int "p=1 all faulty" 64 (Fault_set.count all);
  let none = Random_faults.nodes_iid r mesh8 0.0 in
  check_int "p=0 none" 0 (Fault_set.count none);
  Alcotest.check_raises "bad p" (Invalid_argument "Random_faults.nodes_iid: p out of [0,1]")
    (fun () -> ignore (Random_faults.nodes_iid r mesh8 1.5))

let test_nodes_iid_rate () =
  let r = rng () in
  let total = ref 0 in
  for _ = 1 to 50 do
    total := !total + Fault_set.count (Random_faults.nodes_iid r mesh8 0.25)
  done;
  let mean = float_of_int !total /. 50.0 in
  check_float_eps 2.0 "empirical rate" 16.0 mean

let test_nodes_exact () =
  let r = rng () in
  let fs = Random_faults.nodes_exact r mesh8 10 in
  check_int "exact count" 10 (Fault_set.count fs)

let test_edges_keep () =
  let r = rng () in
  let same = Random_faults.edges_keep r mesh8 1.0 in
  check_bool "p=1 identical" true (Graph.equal mesh8 same);
  let none = Random_faults.edges_keep r mesh8 0.0 in
  check_int "p=0 empty" 0 (Graph.num_edges none);
  check_int "nodes preserved" 64 (Graph.num_nodes none);
  let dual = Random_faults.edges_iid r mesh8 0.0 in
  check_bool "edges_iid p=0 keeps all" true (Graph.equal mesh8 dual)

(* ---- adversaries ---- *)

let test_adversary_random_budget () =
  let fs = Adversary.random (rng ()) mesh8 ~budget:12 in
  check_int "spends budget" 12 (Fault_set.count fs);
  Alcotest.check_raises "overdraft" (Invalid_argument "Adversary.random: bad budget")
    (fun () -> ignore (Adversary.random (rng ()) mesh8 ~budget:65))

let test_adversary_degree () =
  let star = Fn_topology.Basic.star 10 in
  let fs = Adversary.degree_targeted star ~budget:1 in
  check_bool "kills the hub" true (Bitset.mem fs.Fault_set.faulty 0);
  let comps = Components.compute ~alive:fs.Fault_set.alive star in
  check_int "isolates all leaves" 9 comps.Components.count

let test_adversary_targets () =
  let fs = Adversary.targets mesh8 ~targets:[| 5; 6; 7 |] ~budget:2 in
  check_int "prefix only" 2 (Fault_set.count fs);
  check_bool "in order" true
    (Bitset.mem fs.Fault_set.faulty 5 && Bitset.mem fs.Fault_set.faulty 6);
  let fs = Adversary.targets mesh8 ~targets:[| 5 |] ~budget:10 in
  check_int "budget beyond targets" 1 (Fault_set.count fs)

let test_ball_isolation_disconnects () =
  (* enough budget to cut out a ball in the mesh *)
  let fs = Adversary.ball_isolation (rng ()) mesh8 ~budget:20 in
  check_bool "spent something" true (Fault_set.count fs > 0);
  let comps = Components.compute ~alive:fs.Fault_set.alive mesh8 in
  check_bool "disconnected the mesh" true (comps.Components.count >= 2)

let test_ball_isolation_zero_budget () =
  let fs = Adversary.ball_isolation (rng ()) mesh8 ~budget:0 in
  check_int "nothing possible" 0 (Fault_set.count fs)

let test_recursive_cut_fragments () =
  let epsilon = 0.125 in
  let res = Adversary.recursive_cut ~rng:(rng ()) mesh8 ~epsilon in
  let n = Graph.num_nodes mesh8 in
  List.iter
    (fun frag ->
      if float_of_int frag >= epsilon *. float_of_int n then
        Alcotest.failf "fragment %d above threshold" frag)
    res.Adversary.final_fragments;
  check_bool "steps recorded" true (List.length res.Adversary.steps > 0);
  (* accounting: faults = sum of removed in steps *)
  let removed = List.fold_left (fun acc s -> acc + s.Adversary.removed) 0 res.Adversary.steps in
  check_int "fault accounting" removed (Fault_set.count res.Adversary.faults)

let test_recursive_cut_budget_respected () =
  let res = Adversary.recursive_cut ~rng:(rng ()) ~max_budget:5 mesh8 ~epsilon:0.125 in
  check_bool "budget respected" true (Fault_set.count res.Adversary.faults <= 5)

let test_churn_stationary () =
  check_float_eps 1e-9 "formula" 0.25
    (Churn.stationary_dead_fraction ~rate_fail:1.0 ~rate_repair:3.0);
  Alcotest.check_raises "bad rates"
    (Invalid_argument "Churn.stationary_dead_fraction: need rate_fail >= 0, rate_repair > 0")
    (fun () -> ignore (Churn.stationary_dead_fraction ~rate_fail:1.0 ~rate_repair:0.0))

let test_churn_occupancy () =
  (* long-run dead fraction matches the stationary value *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let snaps =
    Churn.simulate (rng ()) g ~rate_fail:0.2 ~rate_repair:0.8 ~horizon:200.0 ~snapshots:50
  in
  (* skip the burn-in: use the second half of the trajectory *)
  let late = List.filteri (fun i _ -> i >= 25) snaps in
  let mean_dead =
    List.fold_left (fun acc s -> acc +. float_of_int (Fault_set.count s.Churn.faults)) 0.0 late
    /. float_of_int (List.length late) /. 64.0
  in
  check_float_eps 0.06 "stationary occupancy" 0.2 mean_dead

let test_churn_snapshot_times () =
  let g = Fn_topology.Basic.path 4 in
  let snaps = Churn.simulate (rng ()) g ~rate_fail:1.0 ~rate_repair:1.0 ~horizon:10.0 ~snapshots:5 in
  check_int "count" 5 (List.length snaps);
  List.iteri
    (fun i s -> check_float_eps 1e-9 "evenly spaced" (2.0 *. float_of_int (i + 1)) s.Churn.time)
    snaps

let test_churn_starts_alive () =
  (* with a tiny horizon almost nothing has failed yet *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let snaps =
    Churn.simulate (rng ()) g ~rate_fail:0.001 ~rate_repair:10.0 ~horizon:0.01 ~snapshots:1
  in
  match snaps with
  | [ s ] -> check_bool "nearly all alive" true (Fault_set.count s.Churn.faults <= 1)
  | _ -> Alcotest.fail "expected one snapshot"

let test_churn_stationary_convergence () =
  (* average over many independent trajectories: the end-of-horizon dead
     fraction converges to rate_fail / (rate_fail + rate_repair) *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let rate_fail = 0.4 and rate_repair = 0.6 in
  let fracs =
    Fn_parallel.Par.trials ~domains:4 ~rng:(rng ()) 32 (fun r ->
        match
          Churn.simulate r g ~rate_fail ~rate_repair ~horizon:50.0 ~snapshots:1
        with
        | [ s ] -> float_of_int (Fault_set.count s.Churn.faults) /. 64.0
        | _ -> Alcotest.fail "expected one snapshot")
  in
  let mean = Array.fold_left ( +. ) 0.0 fracs /. 32.0 in
  check_float_eps 0.05 "converges to stationary dead fraction"
    (Churn.stationary_dead_fraction ~rate_fail ~rate_repair)
    mean

let test_churn_parallel_trajectories () =
  (* split-rng trials: churn trajectories do not depend on how many
     domains computed them *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let run domains =
    Fn_parallel.Par.trials ~domains ~rng:(rng ()) 8 (fun r ->
        Churn.simulate r g ~rate_fail:0.3 ~rate_repair:0.7 ~horizon:20.0 ~snapshots:10
        |> List.map (fun s ->
               (s.Churn.time, Bitset.to_list s.Churn.faults.Fault_set.faulty)))
  in
  check_bool "domains=1 = domains=4" true (run 1 = run 4)

let test_churn_validation () =
  let g = Fn_topology.Basic.path 4 in
  Alcotest.check_raises "rates" (Invalid_argument "Churn.simulate: rates must be positive")
    (fun () -> ignore (Churn.simulate (rng ()) g ~rate_fail:0.0 ~rate_repair:1.0 ~horizon:1.0 ~snapshots:1));
  Alcotest.check_raises "horizon" (Invalid_argument "Churn.simulate: horizon must be positive")
    (fun () -> ignore (Churn.simulate (rng ()) g ~rate_fail:1.0 ~rate_repair:1.0 ~horizon:0.0 ~snapshots:1));
  Alcotest.check_raises "snapshots" (Invalid_argument "Churn.simulate: need at least one snapshot")
    (fun () -> ignore (Churn.simulate (rng ()) g ~rate_fail:1.0 ~rate_repair:1.0 ~horizon:1.0 ~snapshots:0))

let test_normalize_accepts_and_orders () =
  let faulty = Bitset.of_list 10 [ 7 ] in
  match Churn.normalize_batch ~n:10 ~faulty [ Churn.Fault 3; Churn.Repair 7; Churn.Fault 3 ] with
  | Ok evs ->
    (* f3 coalesces to its last occurrence, which follows r7 *)
    check_bool "order" true (evs = [ Churn.Repair 7; Churn.Fault 3 ])
  | Error e -> Alcotest.fail ("rejected: " ^ Churn.error_to_string e)

let test_normalize_rejects () =
  let faulty = Bitset.of_list 10 [ 7 ] in
  let expect name evs want =
    match Churn.normalize_batch ~n:10 ~faulty evs with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error e -> check_bool name true (e = want)
  in
  expect "out of range" [ Churn.Fault 10 ] (Churn.Out_of_range 10);
  expect "negative" [ Churn.Repair (-1) ] (Churn.Out_of_range (-1));
  expect "fault of faulty" [ Churn.Fault 7 ] (Churn.Fault_of_faulty 7);
  expect "repair of alive" [ Churn.Repair 3 ] (Churn.Repair_of_alive 3);
  (* coalescing consequence: f5 r5 on alive 5 survives as r5 *)
  expect "coalesced repair of alive" [ Churn.Fault 5; Churn.Repair 5 ]
    (Churn.Repair_of_alive 5);
  (* range errors come first, in input order *)
  expect "range before mask" [ Churn.Fault 7; Churn.Fault 99 ] (Churn.Out_of_range 99)

let test_normalize_then_apply () =
  let faulty = Bitset.of_list 10 [ 7; 8 ] in
  match
    Churn.normalize_batch ~n:10 ~faulty [ Churn.Repair 8; Churn.Fault 0; Churn.Fault 0 ]
  with
  | Error e -> Alcotest.fail (Churn.error_to_string e)
  | Ok evs ->
    check_int "coalesced" 2 (List.length evs);
    Churn.apply_batch ~faulty evs;
    check_bool "repaired" false (Bitset.mem faulty 8);
    check_bool "faulted" true (Bitset.mem faulty 0);
    check_bool "untouched" true (Bitset.mem faulty 7);
    check_int "mask size" 2 (Bitset.cardinal faulty)

let () =
  Alcotest.run "faults"
    [
      ( "fault_set",
        [
          case "basics" test_fault_set_basics;
          case "none/union" test_fault_set_none_union;
          case "restrict" test_restrict_alive;
        ] );
      ( "random",
        [
          case "iid extremes" test_nodes_iid_extremes;
          case "iid rate" test_nodes_iid_rate;
          case "exact count" test_nodes_exact;
          case "edge faults" test_edges_keep;
        ] );
      ( "adversary",
        [
          case "random budget" test_adversary_random_budget;
          case "degree targeted" test_adversary_degree;
          case "targets" test_adversary_targets;
          case "ball isolation" test_ball_isolation_disconnects;
          case "ball zero budget" test_ball_isolation_zero_budget;
          case "recursive cut" test_recursive_cut_fragments;
          case "recursive budget" test_recursive_cut_budget_respected;
        ] );
      ( "churn",
        [
          case "stationary formula" test_churn_stationary;
          case "occupancy" test_churn_occupancy;
          case "snapshot times" test_churn_snapshot_times;
          case "starts alive" test_churn_starts_alive;
          case "stationary convergence" test_churn_stationary_convergence;
          case "parallel trajectories" test_churn_parallel_trajectories;
          case "validation" test_churn_validation;
          case "normalize accepts and orders" test_normalize_accepts_and_orders;
          case "normalize rejects" test_normalize_rejects;
          case "normalize then apply" test_normalize_then_apply;
        ] );
    ]
