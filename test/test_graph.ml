open Fn_graph
open Testutil

let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let test_counts () =
  check_int "nodes" 3 (Graph.num_nodes triangle);
  check_int "edges" 3 (Graph.num_edges triangle);
  check_int "degree" 2 (Graph.degree triangle 1);
  check_int "max degree" 2 (Graph.max_degree triangle);
  check_int "min degree" 2 (Graph.min_degree triangle)

let test_dedupe_and_orientation () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 0); (0, 1); (2, 3) ] in
  check_int "deduped edges" 2 (Graph.num_edges g);
  check_bool "has 0-1" true (Graph.has_edge g 0 1);
  check_bool "has 1-0" true (Graph.has_edge g 1 0);
  check_bool "no 0-2" false (Graph.has_edge g 0 2)

let test_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edge_array: self-loop")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 1) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.of_edge_array: endpoint out of range")
    (fun () -> ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_neighbors_sorted () =
  let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  check_bool "sorted row" true (Graph.neighbors g 2 = [| 0; 1; 3; 4 |])

let test_iter_edges_once () =
  let seen = ref [] in
  Graph.iter_edges triangle (fun u v -> seen := (u, v) :: !seen);
  check_bool "each edge once with u<v" true
    (List.sort Graph.compare_int_pair !seen = [ (0, 1); (0, 2); (1, 2) ])

let test_edges_array () =
  check_bool "edges array" true (Graph.edges triangle = [| (0, 1); (0, 2); (1, 2) |])

let test_empty () =
  let g = Graph.empty 5 in
  check_int "no edges" 0 (Graph.num_edges g);
  check_int "degree 0" 0 (Graph.degree g 3);
  check_int "max degree" 0 (Graph.max_degree g);
  let z = Graph.empty 0 in
  check_int "zero nodes" 0 (Graph.num_nodes z);
  check_int "min degree of empty" 0 (Graph.min_degree z)

let test_equal () =
  let g1 = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let g2 = Graph.of_edges 3 [ (1, 2); (0, 1) ] in
  check_bool "order independent" true (Graph.equal g1 g2);
  check_bool "different" false (Graph.equal g1 triangle)

let test_alive_degree () =
  let alive = Bitset.of_list 3 [ 0; 1 ] in
  check_int "alive degree" 1 (Graph.alive_degree triangle alive 0);
  check_int "alive degree of dead node still counts alive nbrs" 2
    (Graph.alive_degree triangle alive 2)

let test_fold_neighbors () =
  let sum = Graph.fold_neighbors triangle 0 (fun acc w -> acc + w) 0 in
  check_int "fold sum" 3 sum

let prop_csr_invariants =
  prop "generated graphs satisfy CSR invariants" ~count:200
    (Testutil.gen_any_graph ~max_n:15 ())
    (fun g -> match Check.csr g with Ok () -> true | Error _ -> false)

let prop_handshake =
  prop "sum of degrees = 2m" (Testutil.gen_any_graph ~max_n:15 ()) (fun g ->
      let total = ref 0 in
      for v = 0 to Graph.num_nodes g - 1 do
        total := !total + Graph.degree g v
      done;
      !total = 2 * Graph.num_edges g)

let prop_has_edge_symmetric =
  prop "has_edge symmetric" (Testutil.gen_any_graph ~max_n:10 ()) (fun g ->
      let n = Graph.num_nodes g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Graph.has_edge g u v <> Graph.has_edge g v u then ok := false
        done
      done;
      !ok)

let prop_roundtrip_through_edges =
  prop "of_edges (edges g) = g" (Testutil.gen_any_graph ~max_n:12 ()) (fun g ->
      Graph.equal g (Graph.of_edge_array (Graph.num_nodes g) (Graph.edges g)))

let test_builder_path () =
  let b = Builder.create 4 in
  Builder.add_edges b [ (0, 1); (1, 2); (2, 3) ];
  check_int "recorded" 3 (Builder.edge_count b);
  let g = Builder.to_graph b in
  check_int "nodes" 4 (Graph.num_nodes g);
  check_int "edges" 3 (Graph.num_edges g)

let test_builder_growth () =
  let b = Builder.create 100 in
  for i = 0 to 98 do
    Builder.add_edge b i (i + 1)
  done;
  (* duplicates merge at freeze time *)
  for i = 0 to 98 do
    Builder.add_edge b (i + 1) i
  done;
  let g = Builder.to_graph b in
  check_int "merged edges" 99 (Graph.num_edges g)

let test_builder_rejects () =
  let b = Builder.create 3 in
  Alcotest.check_raises "loop" (Invalid_argument "Builder.add_edge: self-loop") (fun () ->
      Builder.add_edge b 1 1);
  Alcotest.check_raises "range" (Invalid_argument "Builder.add_edge: endpoint out of range")
    (fun () -> Builder.add_edge b 0 3)

let () =
  Alcotest.run "graph"
    [
      ( "csr",
        [
          case "counts" test_counts;
          case "dedupe" test_dedupe_and_orientation;
          case "rejects" test_rejects;
          case "sorted rows" test_neighbors_sorted;
          case "iter edges" test_iter_edges_once;
          case "edges array" test_edges_array;
          case "empty" test_empty;
          case "equal" test_equal;
          case "alive degree" test_alive_degree;
          case "fold neighbors" test_fold_neighbors;
        ] );
      ( "builder",
        [
          case "path" test_builder_path;
          case "growth + merge" test_builder_growth;
          case "rejects" test_builder_rejects;
        ] );
      ( "properties",
        [
          prop_csr_invariants;
          prop_handshake;
          prop_has_edge_symmetric;
          prop_roundtrip_through_edges;
        ] );
    ]
