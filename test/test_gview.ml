(* Gview: implicit generators vs their materializing twins, and
   algorithm agreement across the two arms. *)

open Fn_graph
open Fn_topology
open Fn_prng
open Testutil

(* ---- edge-for-edge agreement with the materializing constructors ---- *)

let check_twin name view twin =
  let m = Implicit.materialize view in
  check_bool (name ^ ": materialized = twin") true (Graph.equal m twin);
  (* degree metadata agrees everywhere, max bound is exact *)
  let n = Graph.num_nodes twin in
  for v = 0 to n - 1 do
    check_int
      (Printf.sprintf "%s: degree %d" name v)
      (Graph.degree twin v) (Gview.degree view v)
  done;
  if n > 0 then check_int (name ^ ": max degree") (Graph.max_degree twin) (Gview.max_degree view);
  (* has_edge spot checks against the twin, random pairs + all edges *)
  let rng = Rng.create 0x6E1D in
  for _ = 1 to 50 do
    if n > 0 then begin
      let u = Rng.int rng n and v = Rng.int rng n in
      check_bool
        (Printf.sprintf "%s: has_edge %d %d" name u v)
        (Graph.has_edge twin u v) (Gview.has_edge view u v)
    end
  done;
  Graph.iter_edges twin (fun u v ->
      check_bool (Printf.sprintf "%s: edge %d-%d" name u v) true (Gview.has_edge view u v))

let test_mesh_twins () =
  List.iter
    (fun dims ->
      let twin, _ = Mesh.graph dims in
      check_twin
        (Printf.sprintf "mesh[%s]" (String.concat "x" (List.map string_of_int (Array.to_list dims))))
        (Implicit.mesh dims) twin)
    [ [| 1 |]; [| 2 |]; [| 7 |]; [| 3; 4 |]; [| 2; 2 |]; [| 2; 2; 2 |]; [| 4; 1; 3 |]; [| 2; 3; 5 |] ]

let test_torus_twins () =
  List.iter
    (fun dims ->
      let twin, _ = Torus.graph dims in
      check_twin
        (Printf.sprintf "torus[%s]" (String.concat "x" (List.map string_of_int (Array.to_list dims))))
        (Implicit.torus dims) twin)
    [ [| 1 |]; [| 2 |]; [| 3 |]; [| 8 |]; [| 2; 2 |]; [| 2; 3 |]; [| 4; 4 |]; [| 1; 5 |]; [| 2; 3; 4 |] ]

let test_hypercube_twins () =
  for d = 0 to 7 do
    check_twin
      (Printf.sprintf "hypercube %d" d)
      (Implicit.hypercube d) (Hypercube.graph d)
  done

let test_butterfly_twins () =
  for k = 1 to 5 do
    check_twin
      (Printf.sprintf "butterfly unwrapped %d" k)
      (Implicit.butterfly_unwrapped k) (Butterfly.unwrapped k)
  done;
  for k = 2 to 5 do
    check_twin
      (Printf.sprintf "butterfly wrapped %d" k)
      (Implicit.butterfly_wrapped k) (Butterfly.wrapped k)
  done

let test_debruijn_twins () =
  for k = 1 to 8 do
    check_twin (Printf.sprintf "debruijn %d" k) (Implicit.debruijn k) (Debruijn.graph k)
  done

let test_chain_graph_twins () =
  let bases =
    [
      ("triangle", Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]);
      ("path4", Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]);
      ("q3", Hypercube.graph 3);
    ]
  in
  List.iter
    (fun (bname, base) ->
      List.iter
        (fun k ->
          let twin = Chain_graph.build base ~k in
          check_twin
            (Printf.sprintf "chain %s k=%d" bname k)
            (Implicit.chain_graph base ~k)
            twin.Chain_graph.graph)
        [ 2; 4 ])
    bases

(* materialized rows come out sorted — the Graph invariant checker
   would reject anything else, but assert it directly too *)
let test_materialize_sorted_rows () =
  let g = Implicit.materialize (Implicit.debruijn 5) in
  for v = 0 to Graph.num_nodes g - 1 do
    let prev = ref (-1) in
    Graph.iter_neighbors g v (fun w ->
        check_bool "strictly increasing row" true (w > !prev);
        prev := w)
  done

(* ---- materialize validation: broken generators are rejected ---- *)

let test_materialize_rejects () =
  let raises name view =
    match Gview.materialize view with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "self-loop" (Gview.implicit ~n:3 ~max_degree:2 (fun v f -> f v));
  raises "out of range" (Gview.implicit ~n:3 ~max_degree:2 (fun _ f -> f 7));
  raises "duplicate"
    (Gview.implicit ~n:2 ~max_degree:3 (fun v f ->
         f (1 - v);
         f (1 - v)));
  raises "asymmetric"
    (Gview.implicit ~n:3 ~max_degree:1 (fun v f -> if v = 0 then f 1));
  raises "max_degree lie"
    (Gview.implicit ~n:4 ~max_degree:1 (fun v f ->
         if v = 0 then begin
           f 1;
           f 2;
           f 3
         end
         else f 0));
  raises "degree lie"
    (Gview.implicit ~n:2 ~max_degree:2
       ~degree:(fun _ -> 2)
       (fun v f -> f (1 - v)))

(* ---- the two arms agree on traversal / boundary / components ---- *)

let arms name view twin =
  let csr = Gview.Csr twin in
  let n = Graph.num_nodes twin in
  check_bool (name ^ ": distances") true
    (Bfs.distances_v csr 0 = Bfs.distances_v view 0);
  check_bool (name ^ ": multi-source") true
    (Bfs.multi_source_distances_v csr [| 0; n - 1 |]
    = Bfs.multi_source_distances_v view [| 0; n - 1 |]);
  check_bool (name ^ ": ball r=2") true
    (Bitset.equal (Bfs.ball_v csr 0 2) (Bfs.ball_v view 0 2));
  let alive = Bitset.create_full n in
  Bitset.remove alive (n / 2);
  let u = Bfs.ball_v ~alive csr 0 1 in
  check_int (name ^ ": node boundary") (Boundary.node_boundary_size_v ~alive csr u)
    (Boundary.node_boundary_size_v ~alive view u);
  check_int (name ^ ": edge boundary")
    (Boundary.edge_boundary_size_v ~alive csr u)
    (Boundary.edge_boundary_size_v ~alive view u);
  check_int (name ^ ": internal edges")
    (Boundary.internal_edge_count_v ~alive csr u)
    (Boundary.internal_edge_count_v ~alive view u);
  let ca = Components.compute_v ~alive csr and cb = Components.compute_v ~alive view in
  check_int (name ^ ": component count") ca.Components.count cb.Components.count;
  check_bool (name ^ ": component labels") true (ca.Components.labels = cb.Components.labels)

let test_arm_agreement () =
  let twin_t, _ = Torus.graph [| 4; 5 |] in
  arms "torus 4x5" (Implicit.torus [| 4; 5 |]) twin_t;
  arms "debruijn 6" (Implicit.debruijn 6) (Debruijn.graph 6);
  arms "butterfly 3" (Implicit.butterfly_wrapped 3) (Butterfly.wrapped 3)

(* resumable grower: same doubling schedule on both arms *)
let test_ball_grower_arms () =
  let dims = [| 5; 5 |] in
  let twin, _ = Torus.graph dims in
  let ga = Bfs.ball_grower_v (Gview.Csr twin) 7 in
  let gb = Bfs.ball_grower_v (Implicit.torus dims) 7 in
  List.iter
    (fun k ->
      let a = Bfs.grow_ball ga k and b = Bfs.grow_ball gb k in
      check_int (Printf.sprintf "size at %d" k) (Bitset.cardinal a) (Bitset.cardinal b))
    [ 2; 4; 8; 16; 25 ];
  check_bool "exhausted" true (Bfs.ball_exhausted ga && Bfs.ball_exhausted gb)

(* percolation curves are byte-identical across arms for the same rng *)
let test_percolation_arms () =
  let dims = [| 4; 6 |] in
  let twin, _ = Torus.graph dims in
  let view = Implicit.torus dims in
  let site_a = Fn_percolation.Newman_ziff.site_run_v (Rng.create 42) (Gview.Csr twin) in
  let site_b = Fn_percolation.Newman_ziff.site_run_v (Rng.create 42) view in
  check_bool "site curves" true
    (site_a.Fn_percolation.Newman_ziff.occupied_largest
    = site_b.Fn_percolation.Newman_ziff.occupied_largest);
  let bond_a = Fn_percolation.Newman_ziff.bond_run_v (Rng.create 43) (Gview.Csr twin) in
  let bond_b = Fn_percolation.Newman_ziff.bond_run_v (Rng.create 43) view in
  check_bool "bond curves" true
    (bond_a.Fn_percolation.Newman_ziff.occupied_largest
    = bond_b.Fn_percolation.Newman_ziff.occupied_largest)

(* Prune on a view: the CSR arm reproduces Prune.run exactly, and the
   implicit arm culls a planted low-expansion appendage *)
let test_prune_arms () =
  let open Faultnet in
  let dims = [| 6; 6 |] in
  let twin, _ = Torus.graph dims in
  let n = Graph.num_nodes twin in
  let alive = Bitset.create_full n in
  let a = Prune.run twin ~alive ~alpha:1.0 ~epsilon:0.5 in
  let b = Prune.run_v (Gview.Csr twin) ~alive ~alpha:1.0 ~epsilon:0.5 in
  check_bool "csr arm = wrapper" true (Bitset.equal a.Prune.kept b.Prune.kept);
  check_int "same rounds" a.Prune.iterations b.Prune.iterations;
  (* both arms under the same representation-agnostic finder: kill
     node 0's four torus neighbors so {0} is a one-node component;
     the round loop (scratch boundary, cull accounting) must behave
     identically on csr and implicit inputs *)
  let finder ~alive view ~threshold =
    ignore threshold;
    let comps = Components.compute_v ~alive view in
    if comps.Components.count <= 1 then None
    else begin
      let smallest = ref 0 in
      for id = 1 to comps.Components.count - 1 do
        if comps.Components.sizes.(id) < comps.Components.sizes.(!smallest) then
          smallest := id
      done;
      if 2 * comps.Components.sizes.(!smallest) <= Bitset.cardinal alive then
        Some (Components.members comps !smallest)
      else None
    end
  in
  let alive2 = Bitset.create_full n in
  List.iter (Bitset.remove alive2) [ 1; 5; 6; 30 ];
  let r = Prune.run_v ~finder (Implicit.torus dims) ~alive:alive2 ~alpha:1.0 ~epsilon:0.9 in
  let r' = Prune.run_v ~finder (Gview.Csr twin) ~alive:alive2 ~alpha:1.0 ~epsilon:0.9 in
  check_bool "culled the isolated node" true
    (not (Bitset.mem r.Prune.kept 0) && r.Prune.iterations >= 1);
  check_bool "arms agree under shared finder" true (Bitset.equal r.Prune.kept r'.Prune.kept);
  check_int "arms agree on rounds" r'.Prune.iterations r.Prune.iterations

let test_ball_witness_v () =
  (* two K4s joined by one bridge: a radius-1 ball from inside either
     clique is exactly half the graph and witnesses the bridge cut *)
  let clique base = [ (base, base + 1); (base, base + 2); (base, base + 3);
                      (base + 1, base + 2); (base + 1, base + 3); (base + 2, base + 3) ] in
  let g = Graph.of_edges 8 (clique 0 @ clique 4 @ [ (3, 4) ]) in
  match Fn_expansion.Estimate.ball_witness_v (Gview.Csr g) Fn_expansion.Cut.Edge with
  | None -> Alcotest.fail "expected a witness"
  | Some cut ->
    check_bool "found the bridge" true (cut.Fn_expansion.Cut.value <= 0.25 +. 1e-9)

let () =
  Alcotest.run "gview"
    [
      ( "twins",
        [
          case "mesh" test_mesh_twins;
          case "torus" test_torus_twins;
          case "hypercube" test_hypercube_twins;
          case "butterfly" test_butterfly_twins;
          case "debruijn" test_debruijn_twins;
          case "chain graph" test_chain_graph_twins;
          case "sorted rows" test_materialize_sorted_rows;
          case "materialize rejects" test_materialize_rejects;
        ] );
      ( "arms",
        [
          case "traversal/boundary/components" test_arm_agreement;
          case "ball grower" test_ball_grower_arms;
          case "percolation curves" test_percolation_arms;
          case "prune" test_prune_arms;
          case "ball witness" test_ball_witness_v;
        ] );
    ]
