(* Large-n smoke: the implicit path must stay usable at n = 10^6
   between bench runs.  Builds a 1000x1000 implicit torus (no edges
   materialized), grows one BFS ball and answers one boundary query,
   all under a generous wall-clock budget — this is a rot detector,
   not a benchmark (bench/ pins the real numbers at n = 10^7). *)

open Fn_graph
open Fn_topology
open Testutil

let side = 1000
let budget_s = 10.0

let test_million_node_torus () =
  let t0 = Fn_obs.Clock.now_ns () in
  let view = Implicit.torus [| side; side |] in
  let n = Gview.num_nodes view in
  check_int "node count" (side * side) n;
  check_int "max degree is O(1) metadata" 4 (Gview.max_degree view);
  (* one BFS ball: radius 50 around the center, |B_r| = 2r^2+2r+1 on
     an unwrapped-locally flat torus *)
  let center = ((side / 2) * side) + (side / 2) in
  let ball = Bfs.ball_v view center 50 in
  check_int "ball cardinality" ((2 * 50 * 50) + (2 * 50) + 1) (Bitset.cardinal ball);
  (* one boundary query on that ball: the diamond's node boundary is
     the next BFS shell, 4(r+1) nodes; its edge boundary 4(2r+1) *)
  check_int "node boundary" (4 * 51) (Boundary.node_boundary_size_v view ball);
  check_int "edge boundary" (4 * 101) (Boundary.edge_boundary_size_v view ball);
  let elapsed = Fn_obs.Clock.elapsed_s ~since_ns:t0 in
  if elapsed > budget_s then
    Alcotest.failf "10^6-node smoke blew its %.0fs budget: %.2fs" budget_s elapsed

let () =
  Alcotest.run "gview-scale"
    [ ("scale", [ case "10^6-node implicit torus" test_million_node_torus ]) ]
