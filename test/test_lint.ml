(* Tests for faultnet-lint: tokenizer edge cases, every rule (hit and
   non-hit fixtures), suppression comments, allowlist, reporters. *)

open Fn_lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let lint ?(path = "lib/somelib/somefile.ml") ?mli_exists src =
  Engine.lint_string ~path ?mli_exists src

let rules_hit findings = List.map (fun (f : Rule.finding) -> f.rule) findings

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

let kinds src =
  Token.tokenize src |> Array.to_list |> List.map (fun (t : Token.t) -> t.kind)

let test_tok_basic () =
  let toks = Token.tokenize "let x = List.sort compare xs" in
  check_int "count" 8 (Array.length toks);
  check_bool "module is Uident" true (toks.(3).kind = Token.Uident);
  check_string "dot" "." toks.(4).text;
  check_int "col of x" 5 toks.(1).col

let test_tok_nested_comment () =
  match kinds "(* outer (* inner *) still outer *) x" with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "nested comment should be one token"

let test_tok_string_in_comment () =
  (* a string inside a comment hides the "*)" it contains *)
  match kinds {|(* tricky " *) " end *) y|} with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail {|string containing "*)" inside comment mis-lexed|}

let test_tok_comment_in_string () =
  (* comment openers inside string literals are just text *)
  match kinds {|let s = "(* not a comment *)"|} with
  | [ Token.Ident; Token.Ident; Token.Op; Token.String ] -> ()
  | _ -> Alcotest.fail "comment delimiters in string mis-lexed"

let test_tok_quoted_string () =
  let toks = Token.tokenize "let s = {q|raw \" (* |w} still |q} x" in
  check_bool "quoted string token" true
    (Array.exists (fun (t : Token.t) -> t.kind = Token.String && t.text = "{q|raw \" (* |w} still |q}") toks)

let test_tok_char_vs_tyvar () =
  (* 'a' is a char literal; 'a in a type annotation is not *)
  let toks = Token.tokenize "let c = 'a' let f (x : 'a) = x" in
  let chars =
    Array.to_list toks |> List.filter (fun (t : Token.t) -> t.kind = Token.Char)
  in
  check_int "exactly one char literal" 1 (List.length chars);
  check_string "char text" "'a'" (List.hd chars).text

let test_tok_escaped_char () =
  let toks = Token.tokenize {|let q = '\'' and n = '\n' and d = '\123'|} in
  let chars =
    Array.to_list toks
    |> List.filter (fun (t : Token.t) -> t.kind = Token.Char)
    |> List.map (fun (t : Token.t) -> t.text)
  in
  check_bool "escaped quote char" true (chars = [ {|'\''|}; {|'\n'|}; {|'\123'|} ])

let test_tok_char_in_comment () =
  (* '"' inside a comment must not open a string scan — the tokenizer
     would swallow the rest of the file *)
  (match kinds {|(* '"' *) x|} with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail {|char literal '"' inside comment desynced tokenizer|});
  (* an apostrophe that is not a char literal stays harmless *)
  (match kinds "(* don't *) y" with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "apostrophe in comment mis-lexed");
  match kinds {|(* '\n' and '*' *) z|} with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "escaped char in comment mis-lexed"

let test_tok_deeply_nested_comment () =
  match kinds "(* a (* b (* c *) b *) a *) w (* (* '\"' *) ok *) v" with
  | [ Token.Comment; Token.Ident; Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "deeply nested comments mis-lexed"

let test_tok_line_numbers () =
  let toks = Token.tokenize "let a = 1\n\nlet b = 2" in
  let b = toks.(5) in
  check_string "ident b" "b" b.text;
  check_int "line of b" 3 b.line;
  check_int "col of b" 5 b.col

(* ------------------------------------------------------------------ *)
(* Rules: each must hit its seeded fixture and stay quiet on clean code *)
(* ------------------------------------------------------------------ *)

let test_no_global_random () =
  let fs = lint "let roll () = Random.int 6" in
  check_bool "hit" true (List.mem "no-global-random" (rules_hit fs));
  (* allowlisted inside lib/prng *)
  let fs = lint ~path:"lib/prng/rng.ml" "let x = Random.int 6" in
  check_bool "allowlisted in lib/prng" false (List.mem "no-global-random" (rules_hit fs));
  (* qualified or commented mentions are fine *)
  let fs = lint "(* Random.int would be wrong *) let x = My_random.int 6" in
  check_bool "comment + other module" false (List.mem "no-global-random" (rules_hit fs))

let test_no_poly_compare () =
  let hit src = List.mem "no-poly-compare" (rules_hit (lint src)) in
  check_bool "List.sort compare" true (hit "let s = List.sort compare xs");
  check_bool "Array.sort compare" true (hit "let () = Array.sort compare a");
  check_bool "List.sort_uniq compare" true (hit "let s = List.sort_uniq compare xs");
  check_bool "Stdlib.compare" true (hit "let s = List.sort Stdlib.compare xs");
  check_bool "parenthesized" true (hit "let s = List.sort (compare) xs");
  check_bool "labelled" true (hit "let s = ListLabels.sort ~cmp:compare xs");
  check_bool "Int.compare ok" false (hit "let s = List.sort Int.compare xs");
  check_bool "custom comparator ok" false (hit "let s = List.sort cmp_edge xs");
  check_bool "compare fn of module ok" false (hit "let s = List.sort Edge.compare xs");
  check_bool "unrelated compare ok" false (hit "let c = compare a b");
  let fs = lint "let s =\n  List.sort compare xs" in
  (match fs with
  | [ f ] -> check_int "line of finding" 2 f.line
  | _ -> Alcotest.fail "expected exactly one finding")

let test_no_poly_compare_in_lambda () =
  (* the gap that let the sweep sort comparator through: a lambda
     comparator whose body calls bare polymorphic compare *)
  let hit src = List.mem "no-poly-compare" (rules_hit (lint src)) in
  check_bool "lambda tuple compare" true
    (hit "let () = Array.sort (fun a b -> compare (x.(a), a) (x.(b), b)) arr");
  check_bool "lambda bare compare" true (hit "let s = List.sort (fun a b -> compare a b) xs");
  check_bool "lambda Stdlib.compare" true
    (hit "let s = List.sort (fun a b -> Stdlib.compare a b) xs");
  check_bool "lambda flipped compare" true (hit "let s = List.sort (fun a b -> compare b a) xs");
  check_bool "labelled lambda" true
    (hit "let s = ListLabels.sort ~cmp:(fun a b -> compare a b) xs");
  check_bool "function keyword" true
    (hit "let s = List.sort (function a -> fun b -> compare a b) xs");
  check_bool "monomorphic lambda ok" false
    (hit
       "let s =\n\
       \  Array.sort (fun a b ->\n\
       \      let c = Float.compare score.(a) score.(b) in\n\
       \      if c <> 0 then c else Int.compare a b) arr");
  check_bool "module compare in lambda ok" false
    (hit "let s = List.sort (fun a b -> Edge.compare a b) xs");
  check_bool "compare after close paren ok" false
    (hit "let s = List.sort (fun a b -> Int.compare a b) xs in let c = compare p q")

let test_no_catchall_exn () =
  let hit src = List.mem "no-catchall-exn" (rules_hit (lint src)) in
  check_bool "try with _" true (hit "let x = try f () with _ -> 0");
  check_bool "try with | _" true (hit "let x = try f () with | _ -> 0");
  check_bool "named exn ok" false (hit "let x = try f () with Not_found -> 0");
  check_bool "match wildcard ok" false (hit "let x = match v with _ -> 0");
  check_bool "nested match in try ok" false
    (hit "let x = try match v with _ -> g () with Not_found -> 0");
  check_bool "with-type constraint ok" false
    (hit "module M : S with type t = int = Impl")

let test_mli_required () =
  let fs = lint ~mli_exists:false "let x = 1" in
  check_bool "hit when missing" true (List.mem "mli-required" (rules_hit fs));
  let fs = lint ~mli_exists:true "let x = 1" in
  check_bool "quiet when present" false (List.mem "mli-required" (rules_hit fs));
  (* driver only sets mli_exists for lib; unset means not applicable *)
  let fs = lint "let x = 1" in
  check_bool "quiet when not applicable" false (List.mem "mli-required" (rules_hit fs))

let test_no_print_in_lib () =
  let hit ?path src = List.mem "no-print-in-lib" (rules_hit (lint ?path src)) in
  check_bool "print_endline in lib" true (hit "let () = print_endline \"hi\"");
  check_bool "Printf.printf in lib" true (hit "let () = Printf.printf \"%d\" 3");
  check_bool "Format.printf in lib" true (hit "let () = Format.printf \"%d\" 3");
  check_bool "sprintf ok" false (hit "let s = Printf.sprintf \"%d\" 3");
  check_bool "eprintf ok" false (hit "let () = Printf.eprintf \"%d\" 3");
  check_bool "bin may print" false (hit ~path:"bin/tool.ml" "let () = print_endline \"hi\"");
  check_bool "reporter allowlisted" false
    (hit ~path:"lib/stats/table.ml" "let () = print_endline \"hi\"")

let test_no_raw_timing () =
  let hit ?path src = List.mem "no-raw-timing" (rules_hit (lint ?path src)) in
  check_bool "Unix.gettimeofday" true (hit "let t = Unix.gettimeofday ()");
  check_bool "Sys.time" true (hit "let t = Sys.time ()");
  check_bool "Unix.time" true (hit "let t = Unix.time ()");
  check_bool "Unix.times" true (hit "let t = Unix.times ()");
  check_bool "bin is linted too" true (hit ~path:"bin/tool.ml" "let t = Sys.time ()");
  (* the benchmark subsystem gets no exemption: its whole point is
     that bench numbers come off the same monotone clock as spans *)
  check_bool "bench engine must use Clock" true
    (hit ~path:"lib/bench/measure.ml" "let t0 = Sys.time () in t0");
  check_bool "bench engine gettimeofday caught" true
    (hit ~path:"lib/bench/measure.ml" "let t0 = Unix.gettimeofday ()");
  check_bool "bench harness is linted too" true
    (hit ~path:"bench/main.ml" "let t = Unix.gettimeofday ()");
  check_bool "clock-routed bench code ok" false
    (hit ~path:"lib/bench/measure.ml" "let t0 = Fn_obs.Clock.now_ns ()");
  check_bool "allowlisted in lib/obs" false
    (hit ~path:"lib/obs/clock.ml" "let t = Unix.gettimeofday ()");
  check_bool "Fn_obs.Clock ok" false (hit "let t = Fn_obs.Clock.now_ns ()");
  check_bool "other Sys functions ok" false (hit "let a = Sys.argv");
  check_bool "qualified submodule ok" false (hit "let t = My.Unix.gettimeofday ()");
  check_bool "comment mention ok" false (hit "(* Unix.gettimeofday is banned *) let x = 1")

let test_no_exit_in_lib () =
  let hit ?path src = List.mem "no-exit-in-lib" (rules_hit (lint ?path src)) in
  check_bool "exit in lib" true (hit "let f bad = if bad then exit 1 else 0");
  check_bool "Stdlib.exit in lib" true (hit "let f () = Stdlib.exit 2");
  check_bool "let exit definition ok" false (hit "let exit sp = finish sp");
  check_bool "qualified Span.exit ok" false (hit "let () = Span.exit sp true");
  check_bool "bin may exit" false (hit ~path:"bin/tool.ml" "let () = exit 1");
  check_bool "test may exit" false (hit ~path:"test/t.ml" "let () = exit 1");
  check_bool "span.ml allowlisted" false
    (hit ~path:"lib/obs/span.ml" "let exit sp ok = record sp ok let f () = exit s true");
  check_bool "comment mention ok" false (hit "(* exit would be wrong *) let x = 1")

let test_no_raw_csr () =
  let hit ?path src = List.mem "no-raw-csr-outside-kernels" (rules_hit (lint ?path src)) in
  check_bool "Graph.xadj in lib" true (hit "let x = Graph.xadj g");
  check_bool "Graph.adj in lib" true (hit "let a = Graph.adj g");
  check_bool "qualified Fn_graph.Graph.adj caught" true
    (hit ~path:"bench/hot.ml" "let a = Fn_graph.Graph.adj g");
  check_bool "tests are linted too" true (hit ~path:"test/t.ml" "let a = Graph.adj g");
  check_bool "check.ml allowlisted" false
    (hit ~path:"lib/graph_core/check.ml" "let xadj = Graph.xadj g");
  check_bool "routing sim allowlisted" false
    (hit ~path:"lib/routing/sim.ml" "let a = Graph.adj g");
  check_bool "iter_neighbors ok" false (hit "let () = Graph.iter_neighbors g v f");
  check_bool "local adj binding ok" false (hit "let adj = neighbors g v");
  check_bool "other module's adj ok" false (hit "let a = Mesh.adj g");
  check_bool "comment mention ok" false (hit "(* Graph.xadj is banned *) let x = 1")

let test_no_todo_naked () =
  let hit src = List.mem "no-todo-naked" (rules_hit (lint src)) in
  check_bool "naked TODO" true (hit "(* TODO handle overflow *) let x = 1");
  check_bool "naked FIXME" true (hit "(* FIXME *) let x = 1");
  check_bool "owned TODO ok" false (hit "(* TODO(alice) handle overflow *) let x = 1");
  check_bool "issue tag ok" false (hit "(* TODO: see #42 *) let x = 1");
  check_bool "TODO in code ident ok" false (hit "let todos = 1 let xTODO = 2");
  check_bool "severity is warning" true
    (match lint "(* TODO x *) let a = 1" with
    | [ f ] -> f.severity = Rule.Warning
    | _ -> false);
  (* multi-line comment: finding on the right line *)
  (match lint "(* line one\n   TODO fix me\n*) let a = 1" with
  | [ f ] -> check_int "line in multi-line comment" 2 f.line
  | _ -> Alcotest.fail "expected one finding")

(* ------------------------------------------------------------------ *)
(* Scope model                                                         *)
(* ------------------------------------------------------------------ *)

let scope_of src = Scope.build (Token.code (Token.tokenize src))

let first_closure root =
  let found = ref None in
  let rec go (s : Scope.t) =
    if !found = None then begin
      if s.kind = Scope.Closure then found := Some s
      else List.iter go s.children
    end
  in
  go root;
  match !found with Some s -> s | None -> Alcotest.fail "no closure found"

let test_scope_closure_binds () =
  let root = scope_of "let f xs = List.map (fun x -> x + offset) xs" in
  let c = first_closure root in
  let bound = Scope.bound_set c in
  check_bool "param bound" true (Hashtbl.mem bound "x");
  check_bool "capture not bound" false (Hashtbl.mem bound "offset")

let test_scope_captures () =
  let src = "let f total =\n  List.map (fun i ->\n    let local = i * 2 in\n    local + total + i) xs" in
  let c = first_closure (scope_of src) in
  let caps = List.map fst (Scope.captures (Token.code (Token.tokenize src)) c) in
  check_bool "total captured" true (List.mem "total" caps);
  check_bool "local not captured" false (List.mem "local" caps);
  check_bool "param not captured" false (List.mem "i" caps)

let test_scope_match_pattern_binds () =
  let src = "let f v = iter (fun x -> match x with Some y -> y + v | None -> 0) v" in
  let c = first_closure (scope_of src) in
  let bound = Scope.bound_set c in
  check_bool "pattern var bound" true (Hashtbl.mem bound "y");
  check_bool "outer capture visible" false (Hashtbl.mem bound "v")

let test_scope_innermost_binding () =
  (* the enclosing structure-level binding spans past nested closures,
     so a sort later in the same definition is inside its range *)
  let src =
    "let collect tbl =\n\
    \  let out = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in\n\
    \  List.sort compare out\n\n\
     let other = 1" in
  let code = Token.code (Token.tokenize src) in
  let root = Scope.build code in
  (* find the Hashtbl token index *)
  let at = ref (-1) in
  Array.iteri
    (fun i (t : Token.t) -> if !at < 0 && t.text = "Hashtbl" then at := i)
    code;
  let s = Scope.innermost_non_closure root !at in
  (match s.Scope.kind with
  | Scope.Binding name -> check_string "binding name" "collect" name
  | _ -> Alcotest.fail "expected a Binding scope");
  (* the next structure item is outside the binding *)
  let other = ref (-1) in
  Array.iteri
    (fun i (t : Token.t) -> if !other < 0 && t.text = "other" then other := i)
    code;
  check_bool "next item outside" false (Scope.contains s !other)

(* ------------------------------------------------------------------ *)
(* Scope-aware rules                                                   *)
(* ------------------------------------------------------------------ *)

let test_par_capture_mutation () =
  let hit src = List.mem "par-capture-mutation" (rules_hit (lint src)) in
  (* the acceptance-criteria seeded mutation: reintroduce the captured
     ref accumulator PR 5 removed from Estimate.run's Par.map closure *)
  check_bool "seeded Estimate.run regression" true
    (hit
       "let run ?alive g ~domains scores objective =\n\
       \  let acc = ref [] in\n\
       \  let sweeps =\n\
       \    Fn_parallel.Par.map ~obs ~domains\n\
       \      (fun score -> acc := Sweep.best_prefix ?alive g ~score objective :: !acc)\n\
       \      scores\n\
       \  in\n\
       \  ignore sweeps;\n\
       \  !acc");
  check_bool "captured ref int incr" true
    (hit "let f n = let c = ref 0 in Par.map (fun _ -> incr c) (idx n)");
  check_bool "captured hashtbl write" true
    (hit "let f tbl xs = Par.map (fun x -> Hashtbl.replace tbl x ()) xs");
  check_bool "field set" true
    (hit "let f t xs = Par.map (fun x -> t.count <- t.count + x) xs");
  check_bool "Domain.spawn closure" true
    (hit "let f c = Domain.spawn (fun () -> c := 1)");
  (* negatives *)
  check_bool "local ref ok" false
    (hit "let f xs = Par.map (fun x -> let c = ref 0 in c := x; !c) xs");
  check_bool "Atomic ok" false
    (hit "let f a xs = Par.map (fun x -> Atomic.incr a; x) xs");
  check_bool "mutex-guarded ok" false
    (hit
       "let f m c xs = Par.map (fun x -> Mutex.lock m; c := x; Mutex.unlock m) xs");
  check_bool "Pool.run disjoint slots ok" false
    (hit
       "let f pool slots = Par.Pool.run pool (fun w -> slots.(w) <- compute w)");
  check_bool "Par.map indexed write still flagged" true
    (hit "let f out xs = Par.map (fun i -> out.(i) <- i * 2) xs");
  check_bool "sequential closure ok" false
    (hit "let f c xs = List.iter (fun x -> c := x) xs")

let test_rng_unsplit_in_par () =
  let hit src = List.mem "rng-unsplit-in-par" (rules_hit (lint src)) in
  check_bool "captured rng" true
    (hit "let f ~rng xs = Par.map (fun x -> Fn_prng.Rng.int rng x) xs");
  check_bool "named trial_rng" true
    (hit "let f trial_rng n = Par.init n (fun i -> draw trial_rng i)");
  (* negatives: the blessed patterns *)
  check_bool "pre-split param ok" false
    (hit "let f ~rng n = Par.trials ~rng n (fun r -> Fn_prng.Rng.int r 10)");
  check_bool "indexed pre-split array ok" false
    (hit
       "let f ~rng n =\n\
       \  let rngs = Fn_prng.Rng.split_n rng n in\n\
       \  Par.init n (fun i -> Fn_prng.Rng.int rngs.(i) 10)");
  check_bool "label-only passthrough not in closure ok" false
    (hit "let f ~rng n job = Supervisor.trials ~rng n job")

let test_par_float_reduce () =
  let hit src = List.mem "par-float-reduce" (rules_hit (lint src)) in
  check_bool "captured float sum" true
    (hit "let f xs = let s = ref 0.0 in Par.map (fun x -> s := !s +. x) xs");
  check_bool "float product via field" true
    (hit "let f t xs = Par.map (fun x -> t.prod <- t.prod *. x) xs");
  (* negatives *)
  check_bool "reduce after join ok" false
    (hit
       "let f xs =\n\
       \  let parts = Par.map (fun x -> weight x) xs in\n\
       \  Array.fold_left ( +. ) 0.0 parts");
  check_bool "local float acc ok" false
    (hit "let f xs = Par.map (fun x -> let s = ref 0.0 in s := !s +. x; !s) xs");
  check_bool "int accumulation is capture rule's job" false
    (hit "let f c xs = Par.map (fun x -> c := !c + x) xs")

let test_hashtbl_order_dependence () =
  let hit src = List.mem "hashtbl-order-dependence" (rules_hit (lint src)) in
  check_bool "fold cons no sort" true
    (hit "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []");
  check_bool "fold float sum" true
    (hit "let total tbl = Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0");
  check_bool "iter into buffer" true
    (hit "let dump tbl buf = Hashtbl.iter (fun k _ -> Buffer.add_string buf k) tbl");
  check_bool "iter cons accumulation" true
    (hit "let keys tbl = let out = ref [] in Hashtbl.iter (fun k _ -> out := k :: !out) tbl; !out");
  (* negatives *)
  check_bool "fold cons then sort ok" false
    (hit
       "let keys tbl =\n\
       \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare");
  check_bool "commutative max ok" false
    (hit "let peak tbl = Hashtbl.fold (fun _ v acc -> max acc v) tbl 0");
  check_bool "int counter iter ok" false
    (hit "let n tbl = let c = ref 0 in Hashtbl.iter (fun _ _ -> incr c) tbl; !c");
  check_bool "iter indexed writes ok" false
    (hit "let fill tbl out = Hashtbl.iter (fun k v -> out.(k) <- v) tbl")

let test_dls_outside_obs () =
  let hit ?path src = List.mem "dls-outside-obs" (rules_hit (lint ?path src)) in
  check_bool "DLS new_key in lib" true
    (hit "let key = Domain.DLS.new_key (fun () -> [])");
  check_bool "DLS get in bin" true
    (hit ~path:"bin/tool.ml" "let v = Domain.DLS.get key");
  (* negatives *)
  check_bool "lib/obs allowlisted" false
    (hit ~path:"lib/obs/span.ml" "let key = Domain.DLS.new_key (fun () -> [])");
  check_bool "other Domain functions ok" false
    (hit "let d = Domain.spawn (fun () -> 1) let n = Domain.recommended_domain_count ()");
  check_bool "comment mention ok" false (hit "(* Domain.DLS is banned *) let x = 1")

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let test_suppression_same_line () =
  let fs = lint "let s = List.sort compare xs (* lint: allow no-poly-compare *)" in
  check_int "suppressed" 0 (List.length fs)

let test_suppression_next_line () =
  let fs =
    lint
      "(* lint: allow no-poly-compare — generic helper, not hot *)\n\
       let s = List.sort compare xs"
  in
  check_int "suppressed" 0 (List.length fs)

let test_suppression_wrong_rule () =
  let fs = lint "let s = List.sort compare xs (* lint: allow no-global-random *)" in
  check_int "not suppressed by other rule" 1 (List.length fs)

let test_suppression_out_of_range () =
  let fs =
    lint "(* lint: allow no-poly-compare *)\nlet a = 1\nlet s = List.sort compare xs"
  in
  check_int "two lines below: not suppressed" 1 (List.length fs)

let test_suppression_multiple_rules () =
  let fs =
    lint
      "let s = List.sort compare xs |> ignore; Random.int 6 (* lint: allow \
       no-poly-compare no-global-random *)"
  in
  check_int "both suppressed" 0 (List.length fs)

let test_suppression_parse () =
  let toks = Token.tokenize "(* lint: allow no-poly-compare no-todo-naked justification *)" in
  match Engine.parse_suppression toks.(0) with
  | Some s ->
      check_bool "rules parsed" true (s.rules = [ "no-poly-compare"; "no-todo-naked"; "justification" ])
  | None -> Alcotest.fail "suppression not parsed"

(* ------------------------------------------------------------------ *)
(* Reporters                                                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_text_reporter () =
  let fs = lint ~path:"lib/x/y.ml" "let s =\n  List.sort compare xs" in
  let txt = Reporter.to_text fs in
  check_bool "file:line:col prefix" true (contains ~needle:"lib/x/y.ml:2:13:" txt);
  check_bool "severity" true (contains ~needle:"[error]" txt);
  check_bool "summary" true (contains ~needle:"1 error, 0 warnings" txt)

let test_json_reporter () =
  let fs =
    lint ~path:"lib/x/y.ml" "let s = List.sort compare xs\n(* TODO later *)"
  in
  let js = Reporter.to_json fs in
  check_bool "file field" true (contains ~needle:{|"file": "lib/x/y.ml"|} js);
  check_bool "line field" true (contains ~needle:{|"line": 1|} js);
  check_bool "rule field" true (contains ~needle:{|"rule": "no-poly-compare"|} js);
  check_bool "severity field" true (contains ~needle:{|"severity": "warning"|} js);
  check_bool "array brackets" true (js.[0] = '[' && contains ~needle:"]" js)

let test_json_empty () = check_string "empty array" "[]\n" (Reporter.to_json [])

let test_json_escape () =
  check_string "escapes" {|a\"b\\c\nd|} (Reporter.json_escape "a\"b\\c\nd")

(* ------------------------------------------------------------------ *)
(* Engine odds and ends                                                *)
(* ------------------------------------------------------------------ *)

let test_findings_sorted () =
  let fs =
    lint "let a = Random.int 6\nlet s = List.sort compare xs\nlet b = Random.bool ()"
  in
  let lines = List.map (fun (f : Rule.finding) -> f.line) fs in
  check_bool "sorted by line" true (lines = List.sort Int.compare lines);
  check_int "three findings" 3 (List.length fs)

let test_errors_filter () =
  let fs = lint "(* TODO x *) let s = List.sort compare xs" in
  check_int "total" 2 (List.length fs);
  check_int "errors only" 1 (List.length (Engine.errors fs))

let test_mli_not_linted_for_code_rules () =
  (* .mli files carry no code rules, but naked TODOs still warn *)
  let fs = lint ~path:"lib/x/y.mli" "val sort : unit\n(* TODO document *)" in
  check_bool "only todo rule" true (rules_hit fs = [ "no-todo-naked" ])

let () =
  Alcotest.run "lint"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basic" `Quick test_tok_basic;
          Alcotest.test_case "nested comment" `Quick test_tok_nested_comment;
          Alcotest.test_case "string in comment" `Quick test_tok_string_in_comment;
          Alcotest.test_case "comment in string" `Quick test_tok_comment_in_string;
          Alcotest.test_case "quoted string" `Quick test_tok_quoted_string;
          Alcotest.test_case "char vs tyvar" `Quick test_tok_char_vs_tyvar;
          Alcotest.test_case "escaped char" `Quick test_tok_escaped_char;
          Alcotest.test_case "char in comment" `Quick test_tok_char_in_comment;
          Alcotest.test_case "deeply nested comment" `Quick test_tok_deeply_nested_comment;
          Alcotest.test_case "line numbers" `Quick test_tok_line_numbers;
        ] );
      ( "scope",
        [
          Alcotest.test_case "closure binds" `Quick test_scope_closure_binds;
          Alcotest.test_case "captures" `Quick test_scope_captures;
          Alcotest.test_case "match pattern binds" `Quick test_scope_match_pattern_binds;
          Alcotest.test_case "innermost binding" `Quick test_scope_innermost_binding;
        ] );
      ( "scope-rules",
        [
          Alcotest.test_case "par-capture-mutation" `Quick test_par_capture_mutation;
          Alcotest.test_case "rng-unsplit-in-par" `Quick test_rng_unsplit_in_par;
          Alcotest.test_case "par-float-reduce" `Quick test_par_float_reduce;
          Alcotest.test_case "hashtbl-order-dependence" `Quick test_hashtbl_order_dependence;
          Alcotest.test_case "dls-outside-obs" `Quick test_dls_outside_obs;
        ] );
      ( "rules",
        [
          Alcotest.test_case "no-global-random" `Quick test_no_global_random;
          Alcotest.test_case "no-poly-compare" `Quick test_no_poly_compare;
          Alcotest.test_case "no-poly-compare in lambda" `Quick test_no_poly_compare_in_lambda;
          Alcotest.test_case "no-catchall-exn" `Quick test_no_catchall_exn;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "no-print-in-lib" `Quick test_no_print_in_lib;
          Alcotest.test_case "no-raw-timing" `Quick test_no_raw_timing;
          Alcotest.test_case "no-exit-in-lib" `Quick test_no_exit_in_lib;
          Alcotest.test_case "no-raw-csr-outside-kernels" `Quick test_no_raw_csr;
          Alcotest.test_case "no-todo-naked" `Quick test_no_todo_naked;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "same line" `Quick test_suppression_same_line;
          Alcotest.test_case "next line" `Quick test_suppression_next_line;
          Alcotest.test_case "wrong rule" `Quick test_suppression_wrong_rule;
          Alcotest.test_case "out of range" `Quick test_suppression_out_of_range;
          Alcotest.test_case "multiple rules" `Quick test_suppression_multiple_rules;
          Alcotest.test_case "parse" `Quick test_suppression_parse;
        ] );
      ( "reporters",
        [
          Alcotest.test_case "text" `Quick test_text_reporter;
          Alcotest.test_case "json" `Quick test_json_reporter;
          Alcotest.test_case "json empty" `Quick test_json_empty;
          Alcotest.test_case "json escape" `Quick test_json_escape;
        ] );
      ( "engine",
        [
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "errors filter" `Quick test_errors_filter;
          Alcotest.test_case "mli code rules off" `Quick test_mli_not_linted_for_code_rules;
        ] );
    ]
