(* Tests for faultnet-lint: tokenizer edge cases, every rule (hit and
   non-hit fixtures), suppression comments, allowlist, reporters. *)

open Fn_lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let lint ?(path = "lib/somelib/somefile.ml") ?mli_exists src =
  Engine.lint_string ~path ?mli_exists src

let rules_hit findings = List.map (fun (f : Rule.finding) -> f.rule) findings

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

let kinds src =
  Token.tokenize src |> Array.to_list |> List.map (fun (t : Token.t) -> t.kind)

let test_tok_basic () =
  let toks = Token.tokenize "let x = List.sort compare xs" in
  check_int "count" 8 (Array.length toks);
  check_bool "module is Uident" true (toks.(3).kind = Token.Uident);
  check_string "dot" "." toks.(4).text;
  check_int "col of x" 5 toks.(1).col

let test_tok_nested_comment () =
  match kinds "(* outer (* inner *) still outer *) x" with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail "nested comment should be one token"

let test_tok_string_in_comment () =
  (* a string inside a comment hides the "*)" it contains *)
  match kinds {|(* tricky " *) " end *) y|} with
  | [ Token.Comment; Token.Ident ] -> ()
  | _ -> Alcotest.fail {|string containing "*)" inside comment mis-lexed|}

let test_tok_comment_in_string () =
  (* comment openers inside string literals are just text *)
  match kinds {|let s = "(* not a comment *)"|} with
  | [ Token.Ident; Token.Ident; Token.Op; Token.String ] -> ()
  | _ -> Alcotest.fail "comment delimiters in string mis-lexed"

let test_tok_quoted_string () =
  let toks = Token.tokenize "let s = {q|raw \" (* |w} still |q} x" in
  check_bool "quoted string token" true
    (Array.exists (fun (t : Token.t) -> t.kind = Token.String && t.text = "{q|raw \" (* |w} still |q}") toks)

let test_tok_char_vs_tyvar () =
  (* 'a' is a char literal; 'a in a type annotation is not *)
  let toks = Token.tokenize "let c = 'a' let f (x : 'a) = x" in
  let chars =
    Array.to_list toks |> List.filter (fun (t : Token.t) -> t.kind = Token.Char)
  in
  check_int "exactly one char literal" 1 (List.length chars);
  check_string "char text" "'a'" (List.hd chars).text

let test_tok_escaped_char () =
  let toks = Token.tokenize {|let q = '\'' and n = '\n' and d = '\123'|} in
  let chars =
    Array.to_list toks
    |> List.filter (fun (t : Token.t) -> t.kind = Token.Char)
    |> List.map (fun (t : Token.t) -> t.text)
  in
  check_bool "escaped quote char" true (chars = [ {|'\''|}; {|'\n'|}; {|'\123'|} ])

let test_tok_line_numbers () =
  let toks = Token.tokenize "let a = 1\n\nlet b = 2" in
  let b = toks.(5) in
  check_string "ident b" "b" b.text;
  check_int "line of b" 3 b.line;
  check_int "col of b" 5 b.col

(* ------------------------------------------------------------------ *)
(* Rules: each must hit its seeded fixture and stay quiet on clean code *)
(* ------------------------------------------------------------------ *)

let test_no_global_random () =
  let fs = lint "let roll () = Random.int 6" in
  check_bool "hit" true (List.mem "no-global-random" (rules_hit fs));
  (* allowlisted inside lib/prng *)
  let fs = lint ~path:"lib/prng/rng.ml" "let x = Random.int 6" in
  check_bool "allowlisted in lib/prng" false (List.mem "no-global-random" (rules_hit fs));
  (* qualified or commented mentions are fine *)
  let fs = lint "(* Random.int would be wrong *) let x = My_random.int 6" in
  check_bool "comment + other module" false (List.mem "no-global-random" (rules_hit fs))

let test_no_poly_compare () =
  let hit src = List.mem "no-poly-compare" (rules_hit (lint src)) in
  check_bool "List.sort compare" true (hit "let s = List.sort compare xs");
  check_bool "Array.sort compare" true (hit "let () = Array.sort compare a");
  check_bool "List.sort_uniq compare" true (hit "let s = List.sort_uniq compare xs");
  check_bool "Stdlib.compare" true (hit "let s = List.sort Stdlib.compare xs");
  check_bool "parenthesized" true (hit "let s = List.sort (compare) xs");
  check_bool "labelled" true (hit "let s = ListLabels.sort ~cmp:compare xs");
  check_bool "Int.compare ok" false (hit "let s = List.sort Int.compare xs");
  check_bool "custom comparator ok" false (hit "let s = List.sort cmp_edge xs");
  check_bool "compare fn of module ok" false (hit "let s = List.sort Edge.compare xs");
  check_bool "unrelated compare ok" false (hit "let c = compare a b");
  let fs = lint "let s =\n  List.sort compare xs" in
  (match fs with
  | [ f ] -> check_int "line of finding" 2 f.line
  | _ -> Alcotest.fail "expected exactly one finding")

let test_no_poly_compare_in_lambda () =
  (* the gap that let the sweep sort comparator through: a lambda
     comparator whose body calls bare polymorphic compare *)
  let hit src = List.mem "no-poly-compare" (rules_hit (lint src)) in
  check_bool "lambda tuple compare" true
    (hit "let () = Array.sort (fun a b -> compare (x.(a), a) (x.(b), b)) arr");
  check_bool "lambda bare compare" true (hit "let s = List.sort (fun a b -> compare a b) xs");
  check_bool "lambda Stdlib.compare" true
    (hit "let s = List.sort (fun a b -> Stdlib.compare a b) xs");
  check_bool "lambda flipped compare" true (hit "let s = List.sort (fun a b -> compare b a) xs");
  check_bool "labelled lambda" true
    (hit "let s = ListLabels.sort ~cmp:(fun a b -> compare a b) xs");
  check_bool "function keyword" true
    (hit "let s = List.sort (function a -> fun b -> compare a b) xs");
  check_bool "monomorphic lambda ok" false
    (hit
       "let s =\n\
       \  Array.sort (fun a b ->\n\
       \      let c = Float.compare score.(a) score.(b) in\n\
       \      if c <> 0 then c else Int.compare a b) arr");
  check_bool "module compare in lambda ok" false
    (hit "let s = List.sort (fun a b -> Edge.compare a b) xs");
  check_bool "compare after close paren ok" false
    (hit "let s = List.sort (fun a b -> Int.compare a b) xs in let c = compare p q")

let test_no_catchall_exn () =
  let hit src = List.mem "no-catchall-exn" (rules_hit (lint src)) in
  check_bool "try with _" true (hit "let x = try f () with _ -> 0");
  check_bool "try with | _" true (hit "let x = try f () with | _ -> 0");
  check_bool "named exn ok" false (hit "let x = try f () with Not_found -> 0");
  check_bool "match wildcard ok" false (hit "let x = match v with _ -> 0");
  check_bool "nested match in try ok" false
    (hit "let x = try match v with _ -> g () with Not_found -> 0");
  check_bool "with-type constraint ok" false
    (hit "module M : S with type t = int = Impl")

let test_mli_required () =
  let fs = lint ~mli_exists:false "let x = 1" in
  check_bool "hit when missing" true (List.mem "mli-required" (rules_hit fs));
  let fs = lint ~mli_exists:true "let x = 1" in
  check_bool "quiet when present" false (List.mem "mli-required" (rules_hit fs));
  (* driver only sets mli_exists for lib; unset means not applicable *)
  let fs = lint "let x = 1" in
  check_bool "quiet when not applicable" false (List.mem "mli-required" (rules_hit fs))

let test_no_print_in_lib () =
  let hit ?path src = List.mem "no-print-in-lib" (rules_hit (lint ?path src)) in
  check_bool "print_endline in lib" true (hit "let () = print_endline \"hi\"");
  check_bool "Printf.printf in lib" true (hit "let () = Printf.printf \"%d\" 3");
  check_bool "Format.printf in lib" true (hit "let () = Format.printf \"%d\" 3");
  check_bool "sprintf ok" false (hit "let s = Printf.sprintf \"%d\" 3");
  check_bool "eprintf ok" false (hit "let () = Printf.eprintf \"%d\" 3");
  check_bool "bin may print" false (hit ~path:"bin/tool.ml" "let () = print_endline \"hi\"");
  check_bool "reporter allowlisted" false
    (hit ~path:"lib/stats/table.ml" "let () = print_endline \"hi\"")

let test_no_raw_timing () =
  let hit ?path src = List.mem "no-raw-timing" (rules_hit (lint ?path src)) in
  check_bool "Unix.gettimeofday" true (hit "let t = Unix.gettimeofday ()");
  check_bool "Sys.time" true (hit "let t = Sys.time ()");
  check_bool "Unix.time" true (hit "let t = Unix.time ()");
  check_bool "Unix.times" true (hit "let t = Unix.times ()");
  check_bool "bin is linted too" true (hit ~path:"bin/tool.ml" "let t = Sys.time ()");
  (* the benchmark subsystem gets no exemption: its whole point is
     that bench numbers come off the same monotone clock as spans *)
  check_bool "bench engine must use Clock" true
    (hit ~path:"lib/bench/measure.ml" "let t0 = Sys.time () in t0");
  check_bool "bench engine gettimeofday caught" true
    (hit ~path:"lib/bench/measure.ml" "let t0 = Unix.gettimeofday ()");
  check_bool "bench harness is linted too" true
    (hit ~path:"bench/main.ml" "let t = Unix.gettimeofday ()");
  check_bool "clock-routed bench code ok" false
    (hit ~path:"lib/bench/measure.ml" "let t0 = Fn_obs.Clock.now_ns ()");
  check_bool "allowlisted in lib/obs" false
    (hit ~path:"lib/obs/clock.ml" "let t = Unix.gettimeofday ()");
  check_bool "Fn_obs.Clock ok" false (hit "let t = Fn_obs.Clock.now_ns ()");
  check_bool "other Sys functions ok" false (hit "let a = Sys.argv");
  check_bool "qualified submodule ok" false (hit "let t = My.Unix.gettimeofday ()");
  check_bool "comment mention ok" false (hit "(* Unix.gettimeofday is banned *) let x = 1")

let test_no_exit_in_lib () =
  let hit ?path src = List.mem "no-exit-in-lib" (rules_hit (lint ?path src)) in
  check_bool "exit in lib" true (hit "let f bad = if bad then exit 1 else 0");
  check_bool "Stdlib.exit in lib" true (hit "let f () = Stdlib.exit 2");
  check_bool "let exit definition ok" false (hit "let exit sp = finish sp");
  check_bool "qualified Span.exit ok" false (hit "let () = Span.exit sp true");
  check_bool "bin may exit" false (hit ~path:"bin/tool.ml" "let () = exit 1");
  check_bool "test may exit" false (hit ~path:"test/t.ml" "let () = exit 1");
  check_bool "span.ml allowlisted" false
    (hit ~path:"lib/obs/span.ml" "let exit sp ok = record sp ok let f () = exit s true");
  check_bool "comment mention ok" false (hit "(* exit would be wrong *) let x = 1")

let test_no_todo_naked () =
  let hit src = List.mem "no-todo-naked" (rules_hit (lint src)) in
  check_bool "naked TODO" true (hit "(* TODO handle overflow *) let x = 1");
  check_bool "naked FIXME" true (hit "(* FIXME *) let x = 1");
  check_bool "owned TODO ok" false (hit "(* TODO(alice) handle overflow *) let x = 1");
  check_bool "issue tag ok" false (hit "(* TODO: see #42 *) let x = 1");
  check_bool "TODO in code ident ok" false (hit "let todos = 1 let xTODO = 2");
  check_bool "severity is warning" true
    (match lint "(* TODO x *) let a = 1" with
    | [ f ] -> f.severity = Rule.Warning
    | _ -> false);
  (* multi-line comment: finding on the right line *)
  (match lint "(* line one\n   TODO fix me\n*) let a = 1" with
  | [ f ] -> check_int "line in multi-line comment" 2 f.line
  | _ -> Alcotest.fail "expected one finding")

(* ------------------------------------------------------------------ *)
(* Suppression                                                         *)
(* ------------------------------------------------------------------ *)

let test_suppression_same_line () =
  let fs = lint "let s = List.sort compare xs (* lint: allow no-poly-compare *)" in
  check_int "suppressed" 0 (List.length fs)

let test_suppression_next_line () =
  let fs =
    lint
      "(* lint: allow no-poly-compare — generic helper, not hot *)\n\
       let s = List.sort compare xs"
  in
  check_int "suppressed" 0 (List.length fs)

let test_suppression_wrong_rule () =
  let fs = lint "let s = List.sort compare xs (* lint: allow no-global-random *)" in
  check_int "not suppressed by other rule" 1 (List.length fs)

let test_suppression_out_of_range () =
  let fs =
    lint "(* lint: allow no-poly-compare *)\nlet a = 1\nlet s = List.sort compare xs"
  in
  check_int "two lines below: not suppressed" 1 (List.length fs)

let test_suppression_multiple_rules () =
  let fs =
    lint
      "let s = List.sort compare xs |> ignore; Random.int 6 (* lint: allow \
       no-poly-compare no-global-random *)"
  in
  check_int "both suppressed" 0 (List.length fs)

let test_suppression_parse () =
  let toks = Token.tokenize "(* lint: allow no-poly-compare no-todo-naked justification *)" in
  match Engine.parse_suppression toks.(0) with
  | Some s ->
      check_bool "rules parsed" true (s.rules = [ "no-poly-compare"; "no-todo-naked"; "justification" ])
  | None -> Alcotest.fail "suppression not parsed"

(* ------------------------------------------------------------------ *)
(* Reporters                                                           *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_text_reporter () =
  let fs = lint ~path:"lib/x/y.ml" "let s =\n  List.sort compare xs" in
  let txt = Reporter.to_text fs in
  check_bool "file:line:col prefix" true (contains ~needle:"lib/x/y.ml:2:13:" txt);
  check_bool "severity" true (contains ~needle:"[error]" txt);
  check_bool "summary" true (contains ~needle:"1 error, 0 warnings" txt)

let test_json_reporter () =
  let fs =
    lint ~path:"lib/x/y.ml" "let s = List.sort compare xs\n(* TODO later *)"
  in
  let js = Reporter.to_json fs in
  check_bool "file field" true (contains ~needle:{|"file": "lib/x/y.ml"|} js);
  check_bool "line field" true (contains ~needle:{|"line": 1|} js);
  check_bool "rule field" true (contains ~needle:{|"rule": "no-poly-compare"|} js);
  check_bool "severity field" true (contains ~needle:{|"severity": "warning"|} js);
  check_bool "array brackets" true (js.[0] = '[' && contains ~needle:"]" js)

let test_json_empty () = check_string "empty array" "[]\n" (Reporter.to_json [])

let test_json_escape () =
  check_string "escapes" {|a\"b\\c\nd|} (Reporter.json_escape "a\"b\\c\nd")

(* ------------------------------------------------------------------ *)
(* Engine odds and ends                                                *)
(* ------------------------------------------------------------------ *)

let test_findings_sorted () =
  let fs =
    lint "let a = Random.int 6\nlet s = List.sort compare xs\nlet b = Random.bool ()"
  in
  let lines = List.map (fun (f : Rule.finding) -> f.line) fs in
  check_bool "sorted by line" true (lines = List.sort Int.compare lines);
  check_int "three findings" 3 (List.length fs)

let test_errors_filter () =
  let fs = lint "(* TODO x *) let s = List.sort compare xs" in
  check_int "total" 2 (List.length fs);
  check_int "errors only" 1 (List.length (Engine.errors fs))

let test_mli_not_linted_for_code_rules () =
  (* .mli files carry no code rules, but naked TODOs still warn *)
  let fs = lint ~path:"lib/x/y.mli" "val sort : unit\n(* TODO document *)" in
  check_bool "only todo rule" true (rules_hit fs = [ "no-todo-naked" ])

let () =
  Alcotest.run "lint"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basic" `Quick test_tok_basic;
          Alcotest.test_case "nested comment" `Quick test_tok_nested_comment;
          Alcotest.test_case "string in comment" `Quick test_tok_string_in_comment;
          Alcotest.test_case "comment in string" `Quick test_tok_comment_in_string;
          Alcotest.test_case "quoted string" `Quick test_tok_quoted_string;
          Alcotest.test_case "char vs tyvar" `Quick test_tok_char_vs_tyvar;
          Alcotest.test_case "escaped char" `Quick test_tok_escaped_char;
          Alcotest.test_case "line numbers" `Quick test_tok_line_numbers;
        ] );
      ( "rules",
        [
          Alcotest.test_case "no-global-random" `Quick test_no_global_random;
          Alcotest.test_case "no-poly-compare" `Quick test_no_poly_compare;
          Alcotest.test_case "no-poly-compare in lambda" `Quick test_no_poly_compare_in_lambda;
          Alcotest.test_case "no-catchall-exn" `Quick test_no_catchall_exn;
          Alcotest.test_case "mli-required" `Quick test_mli_required;
          Alcotest.test_case "no-print-in-lib" `Quick test_no_print_in_lib;
          Alcotest.test_case "no-raw-timing" `Quick test_no_raw_timing;
          Alcotest.test_case "no-exit-in-lib" `Quick test_no_exit_in_lib;
          Alcotest.test_case "no-todo-naked" `Quick test_no_todo_naked;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "same line" `Quick test_suppression_same_line;
          Alcotest.test_case "next line" `Quick test_suppression_next_line;
          Alcotest.test_case "wrong rule" `Quick test_suppression_wrong_rule;
          Alcotest.test_case "out of range" `Quick test_suppression_out_of_range;
          Alcotest.test_case "multiple rules" `Quick test_suppression_multiple_rules;
          Alcotest.test_case "parse" `Quick test_suppression_parse;
        ] );
      ( "reporters",
        [
          Alcotest.test_case "text" `Quick test_text_reporter;
          Alcotest.test_case "json" `Quick test_json_reporter;
          Alcotest.test_case "json empty" `Quick test_json_empty;
          Alcotest.test_case "json escape" `Quick test_json_escape;
        ] );
      ( "engine",
        [
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "errors filter" `Quick test_errors_filter;
          Alcotest.test_case "mli code rules off" `Quick test_mli_not_linted_for_code_rules;
        ] );
    ]
