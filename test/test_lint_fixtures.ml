(* Seeded-violation fixture corpus for the lint engine.

   Each file under fixtures/lint/*.fixture is an OCaml source (the
   extension keeps dune and bin/lint from treating it as a module)
   carrying inline directives:

     (* @path lib/obs/thing.ml *)        override the lint path
     (* @expect RULE LINE COL *)         one expected finding

   The engine's finding set for the file must equal the @expect set
   exactly — both a missed finding and a new false positive fail.
   Rule positions are pinned on purpose: they are the regression
   surface for the scope/analysis layer. *)

open Fn_lint

let fixture_dir = Filename.concat "fixtures" "lint"

let read_lines path =
  let src = Engine.read_file path in
  String.split_on_char '\n' src

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

(* directives, scanned line by line so @expect can cite line numbers *)
let parse_directives lines =
  let path = ref None and expects = ref [] in
  List.iter
    (fun line ->
      let rec scan = function
        | "@path" :: p :: _ -> path := Some p
        | "@expect" :: rule :: l :: c :: _ ->
          expects := (rule, int_of_string l, int_of_string c) :: !expects
        | _ :: rest -> scan rest
        | [] -> ()
      in
      scan (words line))
    lines;
  (!path, List.rev !expects)

let show (rule, line, col) = Printf.sprintf "%s@%d:%d" rule line col

let compare_key (r1, l1, c1) (r2, l2, c2) =
  match Int.compare l1 l2 with
  | 0 -> ( match Int.compare c1 c2 with 0 -> String.compare r1 r2 | c -> c)
  | c -> c

let check_fixture file () =
  let full = Filename.concat fixture_dir file in
  let lines = read_lines full in
  let path_override, expects = parse_directives lines in
  let path =
    match path_override with
    | Some p -> p
    | None -> "lib/fixture/" ^ Filename.remove_extension file ^ ".ml"
  in
  let got =
    Engine.lint_string ~path (Engine.read_file full)
    |> List.map (fun (f : Rule.finding) -> (f.rule, f.line, f.col))
    |> List.sort compare_key
  in
  let expects = List.sort compare_key expects in
  if got <> expects then
    Alcotest.fail
      (Printf.sprintf "%s:\n  expected: [%s]\n  got:      [%s]" file
         (String.concat "; " (List.map show expects))
         (String.concat "; " (List.map show got)))

let () =
  let files =
    Sys.readdir fixture_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fixture")
    |> List.sort String.compare
  in
  if files = [] then failwith "no lint fixtures found";
  Alcotest.run "lint-fixtures"
    [
      ( "corpus",
        List.map (fun f -> Alcotest.test_case f `Quick (check_fixture f)) files
      );
    ]
