(* Tests for lib/obs: Jsonx round-trips, monotone clock, metric math,
   sink behavior (null no-op, memory, JSONL file round-trip) and span
   nesting. *)

open Testutil
open Fn_obs

(* ---- Jsonx ---- *)

let test_jsonx_to_string () =
  let j =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\nd");
        ("i", Jsonx.Int (-3));
        ("f", Jsonx.Float 1.5);
        ("b", Jsonx.Bool true);
        ("n", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]);
      ]
  in
  Alcotest.(check string)
    "compact rendering"
    {|{"s":"a\"b\\c\nd","i":-3,"f":1.5,"b":true,"n":null,"l":[1,2]}|}
    (Jsonx.to_string j)

let test_jsonx_nonfinite () =
  check_bool "nan renders as null" true (Jsonx.to_string (Jsonx.Float Float.nan) = "null");
  check_bool "inf renders as null" true
    (Jsonx.to_string (Jsonx.Float Float.infinity) = "null")

let test_jsonx_roundtrip () =
  let j =
    Jsonx.Obj
      [
        ("name", Jsonx.Str "prune.round");
        ("vals", Jsonx.List [ Jsonx.Int 1; Jsonx.Float 0.25; Jsonx.Bool false; Jsonx.Null ]);
        ("nested", Jsonx.Obj [ ("k", Jsonx.Str "v") ]);
      ]
  in
  match Jsonx.parse (Jsonx.to_string j) with
  | None -> Alcotest.fail "round-trip parse failed"
  | Some j' -> check_bool "round-trip equal" true (j = j')

let test_jsonx_parse_junk () =
  check_bool "garbage" true (Jsonx.parse "{nope" = None);
  check_bool "trailing" true (Jsonx.parse "1 2" = None);
  check_bool "empty" true (Jsonx.parse "" = None);
  check_bool "whitespace int" true (Jsonx.parse "  42  " = Some (Jsonx.Int 42));
  check_bool "escapes" true (Jsonx.parse {|"a\tb"|} = Some (Jsonx.Str "a\tb"))

let test_jsonx_member () =
  let j = Jsonx.Obj [ ("a", Jsonx.Int 1); ("b", Jsonx.Str "x") ] in
  check_bool "present" true (Jsonx.member "b" j = Some (Jsonx.Str "x"));
  check_bool "absent" true (Jsonx.member "c" j = None);
  check_bool "non-object" true (Jsonx.member "a" (Jsonx.Int 3) = None)

(* ---- Clock ---- *)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  check_bool "elapsed non-negative" true (Clock.elapsed_s ~since_ns:!prev >= 0.0);
  check_float "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000)

(* ---- Metrics ---- *)

let test_counter_math () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "test.count" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  check_int "value" 42 (Metrics.counter_value c);
  (* get-or-create returns the same instrument *)
  check_int "shared by name" 42 (Metrics.counter_value (Metrics.counter ~registry:reg "test.count"))

let test_gauge_math () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "test.gauge" in
  check_float "initial" 0.0 (Metrics.gauge_value g);
  Metrics.set g 2.5;
  check_float "set" 2.5 (Metrics.gauge_value g)

let test_histogram_math () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg ~buckets:[| 1.0; 10.0 |] "test.hist" in
  check_int "empty count" 0 (Metrics.histogram_count h);
  check_float "empty mean" 0.0 (Metrics.histogram_mean h);
  List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 100.0 ];
  check_int "count" 4 (Metrics.histogram_count h);
  check_float "sum" 106.5 (Metrics.histogram_sum h);
  check_float "mean" 26.625 (Metrics.histogram_mean h);
  check_float "min" 0.5 (Metrics.histogram_min h);
  check_float "max" 100.0 (Metrics.histogram_max h);
  (* buckets are inclusive upper bounds plus an overflow bucket *)
  match Metrics.histogram_buckets h with
  | [ (b1, c1); (b2, c2); (binf, c3) ] ->
    check_float "bound 1" 1.0 b1;
    check_int "le 1" 2 c1;
    check_float "bound 2" 10.0 b2;
    check_int "le 10" 1 c2;
    check_bool "overflow bound" true (binf = infinity);
    check_int "overflow" 1 c3
  | l -> Alcotest.failf "expected 3 buckets, got %d" (List.length l)

let test_metrics_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter ~registry:reg "test.kind");
  check_bool "gauge on counter name raises" true
    (match Metrics.gauge ~registry:reg "test.kind" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_reports () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:reg "b.count") 7;
  Metrics.set (Metrics.gauge ~registry:reg "a.gauge") 1.25;
  Metrics.observe (Metrics.histogram ~registry:reg "c.hist") 0.5;
  let text = Metrics.report_text ~registry:reg () in
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "counter line" true (has "counter" text && has "b.count" text && has "7" text);
  check_bool "gauge line" true (has "gauge" text && has "a.gauge" text);
  (* name-sorted: a.gauge before b.count before c.hist *)
  check_bool "sorted" true
    (String.index text 'a' < String.index text 'b');
  (match Jsonx.parse (Metrics.report_json ~registry:reg ()) with
  | Some (Jsonx.List [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "report_json should parse to a 3-element array");
  Metrics.reset ~registry:reg ();
  check_bool "reset empties report" true (Metrics.report_text ~registry:reg () = "")

(* ---- Sink ---- *)

let test_null_sink () =
  check_bool "disabled" false (Sink.enabled Sink.null);
  check_int "next_id" (-1) (Sink.next_id Sink.null);
  (* emits and close are no-ops *)
  let sp = Span.enter Sink.null "nothing" in
  Span.instant Sink.null "nothing";
  Span.exit sp;
  Sink.close Sink.null

let test_discard_sink () =
  let s = Sink.discard () in
  check_bool "enabled" true (Sink.enabled s);
  let a = Sink.next_id s and b = Sink.next_id s in
  check_bool "ids increase" true (b = a + 1);
  Span.exit (Span.enter s "x");
  Sink.close s

let test_memory_sink_and_nesting () =
  let sink, events = Sink.memory () in
  let outer = Span.enter sink "outer" ~fields:[ ("alpha", Sink.Float 0.5) ] in
  let inner = Span.enter sink "inner" in
  Span.instant sink "tick" ~fields:[ ("round", Sink.Int 1) ];
  Span.exit inner;
  Span.exit outer ~fields:[ ("kept", Sink.Int 9) ];
  match events () with
  | [ e_outer; e_inner; e_tick; x_inner; x_outer ] ->
    check_bool "outer enter" true (e_outer.Sink.kind = Sink.Enter && e_outer.Sink.name = "outer");
    check_int "outer has no parent" (-1) e_outer.Sink.parent;
    check_int "inner nests under outer" e_outer.Sink.id e_inner.Sink.parent;
    check_bool "instant kind" true (e_tick.Sink.kind = Sink.Instant);
    check_int "instant parented to inner" e_inner.Sink.id e_tick.Sink.parent;
    check_int "instant id" (-1) e_tick.Sink.id;
    check_bool "exit carries fields" true (x_inner.Sink.kind = Sink.Exit);
    check_bool "outer exit fields" true (x_outer.Sink.fields = [ ("kept", Sink.Int 9) ]);
    check_bool "timestamps monotone" true
      (e_outer.Sink.ts_ns <= e_inner.Sink.ts_ns && e_inner.Sink.ts_ns <= x_outer.Sink.ts_ns)
  | l -> Alcotest.failf "expected 5 events, got %d" (List.length l)

let test_wrap_closes_on_exception () =
  let sink, events = Sink.memory () in
  (try Span.wrap sink "risky" (fun () -> failwith "boom") with Failure _ -> ());
  match events () with
  | [ { Sink.kind = Sink.Enter; _ }; { Sink.kind = Sink.Exit; _ } ] -> ()
  | _ -> Alcotest.fail "wrap must emit exit even when the body raises"

let test_jsonl_file_roundtrip () =
  let path = Filename.temp_file "fn_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let sink = Sink.jsonl_file path in
      let sp = Span.enter sink "prune.run" ~fields:[ ("alpha", Sink.Float 0.5) ] in
      Span.instant sink "prune.round"
        ~fields:[ ("round", Sink.Int 1); ("ok", Sink.Bool true); ("tag", Sink.Str "x") ];
      Span.exit sp;
      Sink.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "three lines" 3 (List.length lines);
      let parsed = List.map Jsonx.parse lines in
      check_bool "every line parses" true (List.for_all (fun p -> p <> None) parsed);
      match List.nth parsed 1 with
      | Some line ->
        check_bool "kind field" true (Jsonx.member "kind" line = Some (Jsonx.Str "event"));
        check_bool "name field" true
          (Jsonx.member "name" line = Some (Jsonx.Str "prune.round"));
        (match Jsonx.member "fields" line with
        | Some fields ->
          check_bool "int field" true (Jsonx.member "round" fields = Some (Jsonx.Int 1));
          check_bool "bool field" true (Jsonx.member "ok" fields = Some (Jsonx.Bool true));
          check_bool "str field" true (Jsonx.member "tag" fields = Some (Jsonx.Str "x"))
        | None -> Alcotest.fail "no fields object")
      | None -> Alcotest.fail "instant line did not parse")

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          case "to_string" test_jsonx_to_string;
          case "non-finite floats" test_jsonx_nonfinite;
          case "round-trip" test_jsonx_roundtrip;
          case "reject junk" test_jsonx_parse_junk;
          case "member" test_jsonx_member;
        ] );
      ("clock", [ case "monotone" test_clock_monotone ]);
      ( "metrics",
        [
          case "counter" test_counter_math;
          case "gauge" test_gauge_math;
          case "histogram" test_histogram_math;
          case "kind mismatch" test_metrics_kind_mismatch;
          case "reports" test_metrics_reports;
        ] );
      ( "sink",
        [
          case "null is a no-op" test_null_sink;
          case "discard counts ids" test_discard_sink;
          case "memory + span nesting" test_memory_sink_and_nesting;
          case "wrap closes on exception" test_wrap_closes_on_exception;
          case "jsonl file round-trip" test_jsonl_file_roundtrip;
        ] );
    ]
