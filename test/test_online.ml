(* Fn_online: the incremental-equals-scratch differential invariant,
   the delta-BFS surveys, batch rejection atomicity, warm-mode audit
   reconciliation, the line protocol, and daemon kill-and-resume
   byte-identity through the faultnetd binary. *)

open Fn_graph
open Testutil
module Event = Fn_online.Event
module Delta_bfs = Fn_online.Delta_bfs
module Dirty = Fn_online.Dirty
module Cert = Fn_online.Cert
module Warm = Fn_online.Warm
module Engine = Fn_online.Engine
module Protocol = Fn_online.Protocol
module Server = Fn_online.Server

let rng () = Fn_prng.Rng.create 0x0417

(* ------------------------------------------------------------------ *)
(* Dirty tracker                                                       *)
(* ------------------------------------------------------------------ *)

let test_dirty_basics () =
  let d = Dirty.create 10 in
  check_bool "clean" false (Dirty.mem d 3);
  Dirty.mark d 3;
  Dirty.mark d 7;
  Dirty.mark d 3;
  check_bool "marked" true (Dirty.mem d 3);
  check_int "deduplicated" 2 (Dirty.count d);
  let seen = ref [] in
  Dirty.iter d (fun v -> seen := v :: !seen);
  check_int "iter covers marks" 2 (List.length !seen);
  Dirty.next_generation d;
  check_bool "cleared" false (Dirty.mem d 3);
  check_int "count reset" 0 (Dirty.count d);
  check_int "peak persists" 2 (Dirty.peak d);
  Alcotest.check_raises "out of range" (Invalid_argument "Dirty.mark: node out of range")
    (fun () -> Dirty.mark d 10)

(* ------------------------------------------------------------------ *)
(* Delta_bfs vs a naive reference                                      *)
(* ------------------------------------------------------------------ *)

let naive_survey view ~alive ~radius src =
  let n = Gview.num_nodes view in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Gview.iter_neighbors view u (fun v ->
        if dist.(v) < 0 && Bitset.mem alive v then begin
          dist.(v) <- dist.(u) + 1;
          if dist.(v) <= radius then Queue.add v q
        end)
  done;
  let s = ref 0 and b = ref 0 and ball = Bitset.create n in
  Array.iteri
    (fun v d ->
      if d >= 0 && d <= radius then begin
        incr s;
        Bitset.add ball v
      end
      else if d = radius + 1 then incr b)
    dist;
  (!s, !b, ball)

let random_mask r n keep =
  let m = Bitset.create n in
  for v = 0 to n - 1 do
    if Fn_prng.Rng.float r 1.0 < keep then Bitset.add m v
  done;
  m

let test_survey_matches_naive () =
  let r = rng () in
  let views =
    [
      Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:7));
      Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6));
      Fn_topology.Implicit.torus [| 5; 7 |];
    ]
  in
  List.iter
    (fun view ->
      let n = Gview.num_nodes view in
      let bfs = Delta_bfs.create view in
      for _ = 1 to 20 do
        let alive = random_mask r n 0.8 in
        match Bitset.choose alive with
        | None -> ()
        | Some src ->
          let radius = 1 + Fn_prng.Rng.int r 3 in
          let ball = Bitset.create n in
          let s, b = Delta_bfs.survey bfs ~alive ~into:ball ~radius src in
          let s', b', ball' = naive_survey view ~alive ~radius src in
          check_int "s" s' s;
          check_int "b" b' b;
          check_bool "ball" true (Bitset.equal ball' ball)
      done)
    views

let test_survey_boundary_is_prune_boundary () =
  (* the surveyed (s, b) must be exactly the |S| and |Gamma(S)| Prune
     measures on the same ball *)
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let n = Gview.num_nodes view in
  let r = rng () in
  let bfs = Delta_bfs.create view in
  for _ = 1 to 20 do
    let alive = random_mask r n 0.85 in
    match Bitset.choose alive with
    | None -> ()
    | Some src ->
      let ball = Bitset.create n in
      let s, b = Delta_bfs.survey bfs ~alive ~into:ball ~radius:2 src in
      check_int "size" (Bitset.cardinal ball) s;
      check_int "boundary" (Boundary.node_boundary_size_v ~alive view ball) b
  done

let test_region_marks_neighborhood () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let view = Gview.Csr g in
  let bfs = Delta_bfs.create view in
  let seen = Hashtbl.create 64 in
  Delta_bfs.region bfs ~radius:2 ~sources:[ 0; 63 ] (fun v ->
      check_bool "no duplicates" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ());
  (* unrestricted distance <= 2 of corner 0 (row-major 8x8): 6 nodes,
     same for corner 63, disjoint *)
  check_int "region size" 12 (Hashtbl.length seen);
  check_bool "source in" true (Hashtbl.mem seen 0);
  check_bool "dist 2 in" true (Hashtbl.mem seen 2);
  check_bool "dist 3 out" false (Hashtbl.mem seen 3)

(* ------------------------------------------------------------------ *)
(* The differential invariant: incremental == from-scratch             *)
(* ------------------------------------------------------------------ *)

let result_equal (a : Faultnet.Prune.result) (b : Faultnet.Prune.result) =
  Bitset.equal a.kept b.kept
  && a.iterations = b.iterations
  && Float.equal a.threshold b.threshold
  && List.length a.culled = List.length b.culled
  && List.for_all2
       (fun (x : Faultnet.Prune.culled) (y : Faultnet.Prune.culled) ->
         x.size = y.size && x.boundary = y.boundary && Bitset.equal x.set y.set)
       a.culled b.culled

(* Random valid batch against the engine's current fault mask: faults
   of alive nodes, repairs of faulty ones. *)
let random_batch r engine k =
  let faulty = Engine.faulty_mask engine in
  let alive = Engine.alive_mask engine in
  let pick m =
    let a = Bitset.to_array m in
    if Array.length a = 0 then None else Some a.(Fn_prng.Rng.int r (Array.length a))
  in
  let out = ref [] in
  let used = Hashtbl.create 8 in
  for _ = 1 to k do
    let repair = Fn_prng.Rng.float r 1.0 < 0.4 in
    let cand = if repair then pick faulty else pick alive in
    match cand with
    | Some v when not (Hashtbl.mem used v) ->
      Hashtbl.replace used v ();
      (* keep the mirrors current so later picks stay valid *)
      if repair then begin
        Bitset.remove faulty v;
        Bitset.add alive v;
        out := Event.Repair v :: !out
      end
      else begin
        Bitset.add faulty v;
        Bitset.remove alive v;
        out := Event.Fault v :: !out
      end
    | _ -> ()
  done;
  List.rev !out

let check_differential view ~alpha ~epsilon ~batches ~batch_size =
  let r = rng () in
  let cfg = { Engine.default_config with Engine.alpha; epsilon; seed = 99 } in
  let engine = Engine.create ~cfg view in
  for i = 1 to batches do
    let batch = random_batch r engine batch_size in
    (match Engine.apply engine batch with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "valid batch rejected: %s" (Fn_faults.Churn.error_to_string e));
    let mask = Engine.alive_mask engine in
    let scratch = Cert.scratch ~radius:2 view ~alive:mask ~alpha ~epsilon in
    check_bool
      (Printf.sprintf "batch %d: incremental result equals scratch" i)
      true
      (result_equal (Engine.result engine) scratch);
    let a_inc = Engine.alpha engine in
    let a_ref = Warm.reference ~seed:99 view ~kept:scratch.Faultnet.Prune.kept in
    check_bool
      (Printf.sprintf "batch %d: alpha byte-equal" i)
      true
      (Int64.equal (Int64.bits_of_float a_inc) (Int64.bits_of_float a_ref))
  done;
  let rep = Engine.audit engine in
  check_int "final audit clean" 0 rep.Engine.faults

let test_differential_mesh () =
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:8)) in
  check_differential view ~alpha:1.0 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_mesh_aggressive () =
  (* threshold 1.0: interior mesh balls qualify even fault-free, so
     the cascade itself (demotions, re-surveys mid-cull) is exercised
     hard from the first batch *)
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:8)) in
  check_differential view ~alpha:2.0 ~epsilon:0.5 ~batches:8 ~batch_size:3

let test_differential_torus () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6)) in
  check_differential view ~alpha:1.2 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_implicit_torus () =
  let view = Fn_topology.Implicit.torus [| 8; 8 |] in
  check_differential view ~alpha:1.2 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_expander () =
  let g = Fn_topology.Expander.random_regular (rng ()) ~n:64 ~d:4 in
  check_differential (Gview.Csr g) ~alpha:1.5 ~epsilon:0.6 ~batches:10 ~batch_size:5

let test_invalid_batch_is_atomic () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6)) in
  let engine = Engine.create view in
  (match Engine.apply engine [ Event.Fault 1; Event.Fault 2 ] with
  | Ok k -> check_int "applied" 2 k
  | Error _ -> Alcotest.fail "valid batch rejected");
  let digest = Engine.state_digest engine in
  let expect_err evs =
    match Engine.apply engine evs with
    | Ok _ -> Alcotest.fail "invalid batch accepted"
    | Error _ -> ()
  in
  expect_err [ Event.Fault 1 ] (* already faulty *);
  expect_err [ Event.Repair 5 ] (* alive *);
  expect_err [ Event.Fault 99 ] (* out of range *);
  expect_err [ Event.Fault 5; Event.Repair 5 ] (* coalesces to repair-of-alive *);
  check_bool "state unchanged by rejected batches" true
    (String.equal digest (Engine.state_digest engine));
  check_int "rejections counted" 4 (Engine.stats engine).Engine.rejected

let test_coalescing_last_write_wins () =
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:6)) in
  let engine = Engine.create view in
  (* f3 r3 f3 coalesces to the final f3 *)
  (match Engine.apply engine [ Event.Fault 3; Event.Repair 3; Event.Fault 3 ] with
  | Ok k -> check_int "coalesced to one event" 1 k
  | Error _ -> Alcotest.fail "coalescible batch rejected");
  check_bool "node 3 dead" false (Engine.is_alive engine 3);
  check_int "one event counted" 1 (Engine.stats engine).Engine.events

let test_warm_mode_reconciles () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:12)) in
  let cfg =
    { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 7;
      mode = Warm.Warm }
  in
  let engine = Engine.create ~cfg view in
  let r = rng () in
  for _ = 1 to 6 do
    let batch = random_batch r engine 3 in
    (match Engine.apply engine batch with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "valid batch rejected");
    ignore (Engine.alpha engine : float)
  done;
  let s = Engine.stats engine in
  check_bool "warm path exercised" true (s.Engine.alpha_computes > 0);
  ignore (Engine.audit engine : Engine.audit_report);
  (* post-audit the cached alpha must be the cold reference *)
  let kept = (Engine.result engine).Faultnet.Prune.kept in
  let a_ref = Warm.reference ~seed:7 view ~kept in
  check_bool "reconciled to cold reference" true
    (Int64.equal (Int64.bits_of_float (Engine.alpha engine)) (Int64.bits_of_float a_ref))

(* ------------------------------------------------------------------ *)
(* Protocol and in-process server                                      *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let cmds =
    [
      Protocol.Alive 3;
      Protocol.Certificate 0;
      Protocol.Alpha;
      Protocol.Apply [ Event.Fault 1; Event.Repair 2 ];
      Protocol.Stats;
      Protocol.Audit;
      Protocol.State;
      Protocol.Quit;
    ]
  in
  List.iter
    (fun c ->
      match Protocol.parse ~n:1000 (Protocol.render c) with
      | Ok (Some c') -> check_bool ("roundtrip " ^ Protocol.render c) true (c = c')
      | _ -> Alcotest.fail ("roundtrip failed: " ^ Protocol.render c))
    cmds;
  (match Protocol.parse ~n:1000 "  # comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not ignored");
  (match Protocol.parse ~n:1000 "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank not ignored");
  (match Protocol.parse ~n:1000 "alive? x" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad node id accepted");
  (match Protocol.parse ~n:1000 "apply f1 zap" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad token accepted");
  match Protocol.parse ~n:1000 "frobnicate" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown command accepted"

(* Total parsing: every refusal is typed, node ids are validated at
   parse time, and the per-line / per-batch limits bite. *)
let test_protocol_hardening () =
  let code line =
    match Protocol.parse ~n:64 line with
    | Error e -> Protocol.error_code e
    | Ok (Some _) -> "(accepted)"
    | Ok None -> "(ignored)"
  in
  let check_code line want = Alcotest.(check string) line want (code line) in
  check_code "alive? 64" "bad-node";
  check_code "alive? -1" "bad-node";
  check_code "alive? 99999999999999999999999999" "bad-node";
  check_code "certificate? NaN" "bad-node";
  check_code "apply f64" "bad-node";
  check_code "apply r-3" "bad-node";
  check_code "apply f1 x2" "bad-event";
  check_code "apply" "bad-event";
  check_code "apply f" "bad-event";
  check_code "frobnicate 3" "bad-command";
  check_code "alive?" "bad-command";
  check_code "alive? 63" "(accepted)";
  check_code "apply f0 r63" "(accepted)";
  (* limits *)
  let tiny = { Protocol.max_line_bytes = 32; max_batch_events = 2 } in
  (match Protocol.parse ~limits:tiny ~n:64 (String.make 33 'a') with
  | Error (Protocol.Line_too_long 33) -> ()
  | _ -> Alcotest.fail "line limit not enforced");
  (match Protocol.parse ~limits:tiny ~n:64 "apply f0 f1 f2" with
  | Error (Protocol.Batch_too_large 3) -> ()
  | _ -> Alcotest.fail "batch limit not enforced");
  (* hostile bytes never raise *)
  let r = rng () in
  for _ = 1 to 500 do
    let line =
      String.init (Fn_prng.Rng.int r 80) (fun _ -> Char.chr (Fn_prng.Rng.int r 256))
    in
    match Protocol.parse ~n:64 line with
    | Ok _ | Error _ -> ()
  done

let test_event_json_roundtrip () =
  let batch = [ Event.Fault 12; Event.Repair 0; Event.Fault 999 ] in
  (match Event.batch_of_json (Event.batch_to_json batch) with
  | Some b -> check_bool "json roundtrip" true (b = batch)
  | None -> Alcotest.fail "json roundtrip failed");
  match Event.batch_of_json (Fn_obs.Jsonx.Str "nope") with
  | None -> ()
  | Some _ -> Alcotest.fail "bad json accepted"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_server_session () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5 } in
  let engine = Engine.create ~cfg view in
  let say line = Server.handle engine line in
  let expect line want =
    match (say line).Server.reply with
    | Some got -> check_bool (line ^ " -> " ^ want) true (String.equal want got)
    | None -> Alcotest.fail ("no reply to " ^ line)
  in
  expect "alive? 5" "ok true";
  expect "apply f5 f6" "ok applied=2 alive=62";
  expect "alive? 5" "ok false";
  expect "apply f5" "err rejected fault of already-faulty node 5";
  expect "alive? 999" "err bad-node alive? wants a node in [0, 64), got 999";
  (match (say "alpha?").Server.reply with
  | Some s -> check_bool "alpha ok" true (starts_with ~prefix:"ok 0x" s)
  | None -> Alcotest.fail "no alpha reply");
  (match (say "state?").Server.reply with
  | Some s -> check_bool "digest ok" true (starts_with ~prefix:"ok digest=" s)
  | None -> Alcotest.fail "no state reply");
  (match (say "audit!").Server.reply with
  | Some s -> check_bool "audit clean" true (starts_with ~prefix:"ok " s && not (starts_with ~prefix:"ok kept=false" s))
  | None -> Alcotest.fail "no audit reply");
  check_bool "comment ignored" true (Option.is_none (say "# hi").Server.reply);
  let out = say "quit" in
  check_bool "quit stops" true out.Server.quit

let test_query_deadline () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let engine = Engine.create view in
  (* an impossible budget: every query blows it, post hoc *)
  let policy = Fn_resilience.Policy.make ~deadline_s:1e-12 () in
  let reply line =
    match (Server.handle ~policy engine line).Server.reply with
    | Some s -> s
    | None -> Alcotest.fail ("no reply to " ^ line)
  in
  check_bool "query refused post-hoc" true (starts_with ~prefix:"err deadline" (reply "alpha?"));
  check_bool "stats refused" true (starts_with ~prefix:"err deadline" (reply "stats?"));
  (* state-changing commands are exempt: an applied batch must ack ok,
     or replayable state would change on a non-ok reply *)
  check_bool "apply exempt" true (starts_with ~prefix:"ok applied=" (reply "apply f3"));
  check_bool "audit exempt" true (starts_with ~prefix:"ok kept=" (reply "audit!"));
  check_int "batch really applied" 1 (Engine.stats engine).Engine.batches;
  (* a generous budget lets everything through *)
  let policy = Fn_resilience.Policy.make ~deadline_s:3600.0 () in
  match (Server.handle ~policy engine "alpha?").Server.reply with
  | Some s -> check_bool "generous deadline passes" true (starts_with ~prefix:"ok 0x" s)
  | None -> Alcotest.fail "no alpha reply"

(* ------------------------------------------------------------------ *)
(* Fuzzing: total parsing + state-changes-only-on-ok                   *)
(* ------------------------------------------------------------------ *)

module Fuzz = Fn_online.Fuzz

let test_fuzz_10k () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5 } in
  let engine = Engine.create ~cfg view in
  let r = Fuzz.run engine ~seed:0xfeed ~count:10_000 in
  (match r.Fuzz.exceptions with
  | [] -> ()
  | (line, e) :: _ ->
    Alcotest.failf "%d uncaught exceptions; first: %S -> %s"
      (List.length r.Fuzz.exceptions) line e);
  (match r.Fuzz.violations with
  | [] -> ()
  | line :: _ ->
    Alcotest.failf "%d state-change-on-err violations; first: %S"
      (List.length r.Fuzz.violations) line);
  check_int "every line answered or ignored" 10_000 (r.Fuzz.ok + r.Fuzz.err + r.Fuzz.ignored);
  (* the generator must actually exercise both halves of the grammar *)
  check_bool "some commands accepted" true (r.Fuzz.ok > 1000);
  check_bool "some lines refused" true (r.Fuzz.err > 1000);
  (* differential determinism: the same seed replays to the same digest *)
  let engine2 = Engine.create ~cfg view in
  let r2 = Fuzz.run engine2 ~seed:0xfeed ~count:10_000 in
  check_bool "fuzz run deterministic" true (r = r2);
  check_bool "fuzzed engines digest-identical" true
    (String.equal (Engine.state_digest engine) (Engine.state_digest engine2))

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_fuzz_corpus () =
  (* regression corpus: every line that ever crashed or misbehaved a
     server lands here verbatim and is replayed forever *)
  let corpus = Filename.concat (Filename.concat "fixtures" "fuzz") "corpus.txt" in
  if not (Sys.file_exists corpus) then Alcotest.fail ("missing corpus: " ^ corpus)
  else begin
    let lines = read_lines corpus in
    check_bool "corpus non-trivial" true (List.length lines >= 40);
    let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
    let engine = Engine.create view in
    match Fuzz.replay engine lines with
    | [] -> ()
    | (line, e) :: _ -> Alcotest.failf "corpus line %S raised %s" line e
  end

(* ------------------------------------------------------------------ *)
(* Overload shedding and degraded mode                                 *)
(* ------------------------------------------------------------------ *)

(* torus 8x8, radius 2: one changed node dirties its radius-3 ball
   (25 nodes); two far-apart nodes dirty ~50 of 64.  max_dirty_frac
   0.5 puts the threshold at 32: single-node batches refresh normally,
   spread batches shed. *)
let shedding_engine () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg =
    { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; max_dirty_frac = 0.5 }
  in
  Engine.create ~cfg view

let apply_exn engine evs =
  match Engine.apply engine evs with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "batch rejected: %s" (Fn_faults.Churn.error_to_string e)

let test_shedding_degraded_mode () =
  let engine = shedding_engine () in
  apply_exn engine [ Event.Fault 0 ];
  check_bool "small batch not shed" false (Engine.degraded engine);
  let alpha_before = Engine.alpha engine in
  let kept_before = (Engine.result engine).Faultnet.Prune.kept in
  (* nodes 18=(2,2) and 54=(6,6) are torus-distance 8 apart: disjoint
     radius-3 balls, 50 dirty nodes > 32 *)
  apply_exn engine [ Event.Fault 18; Event.Fault 54 ];
  check_bool "spread batch shed" true (Engine.degraded engine);
  check_int "shed counted" 1 (Engine.stats engine).Engine.shed_batches;
  (* reads serve the stale pinned cascade, stamped *)
  let say line = (Server.handle engine line).Server.reply in
  (match say "alpha?" with
  | Some s ->
    check_bool "alpha stamped degraded" true
      (String.equal s ("ok " ^ Protocol.float_hex alpha_before ^ " degraded"))
  | None -> Alcotest.fail "no alpha reply");
  (match say "certificate? 18" with
  | Some s ->
    (* node 18 is faulty, but the stale certificate still lists it *)
    check_bool "stale certificate stamped" true
      (String.equal s
         (Printf.sprintf "ok %b degraded" (Bitset.mem kept_before 18)))
  | None -> Alcotest.fail "no certificate reply");
  (* aliveness is mask-backed and never stale *)
  (match say "alive? 18" with
  | Some s -> Alcotest.(check string) "alive is current" "ok false" s
  | None -> Alcotest.fail "no alive reply");
  check_bool "degraded answers counted" true
    ((Engine.stats engine).Engine.degraded_answers >= 2);
  (* the next under-threshold batch pays the deferred rebuild *)
  apply_exn engine [ Event.Fault 1 ];
  check_bool "caught up" false (Engine.degraded engine);
  let mask = Engine.alive_mask engine in
  let scratch = Cert.scratch ~radius:2 (Engine.view engine) ~alive:mask ~alpha:1.0 ~epsilon:0.5 in
  check_bool "post-catchup result equals scratch" true
    (result_equal (Engine.result engine) scratch);
  check_int "clean audit after shedding" 0 (Engine.audit engine).Engine.faults

let test_shedding_deterministic () =
  (* degraded answers are a pure function of the accepted batch
     history: two engines fed the same batches agree byte for byte,
     including the stale ones *)
  let trace engine =
    let out = ref [] in
    let say line =
      match (Server.handle engine line).Server.reply with
      | Some s -> out := s :: !out
      | None -> ()
    in
    say "apply f0";
    say "alpha?";
    say "apply f18 f54";
    say "alpha?";
    say "certificate? 18";
    say "state?";
    say "apply f1";
    say "alpha?";
    say "state?";
    List.rev !out
  in
  let t1 = trace (shedding_engine ()) in
  let t2 = trace (shedding_engine ()) in
  check_bool "degraded session deterministic" true (t1 = t2)

let test_recompute_clears_degraded () =
  let engine = shedding_engine () in
  apply_exn engine [ Event.Fault 18; Event.Fault 54 ];
  check_bool "shed" true (Engine.degraded engine);
  Engine.recompute engine;
  check_bool "recompute clears degraded" false (Engine.degraded engine);
  let mask = Engine.alive_mask engine in
  let scratch = Cert.scratch ~radius:2 (Engine.view engine) ~alive:mask ~alpha:1.0 ~epsilon:0.5 in
  check_bool "recompute lands on scratch" true
    (result_equal (Engine.result engine) scratch)

let test_audit_pays_deferred_rebuild () =
  let engine = shedding_engine () in
  apply_exn engine [ Event.Fault 18; Event.Fault 54 ];
  check_bool "shed" true (Engine.degraded engine);
  (* the audit refreshes first, so shedding alone is never divergence *)
  let rep = Engine.audit engine in
  check_int "audit clean through shedding" 0 rep.Engine.faults;
  check_bool "audit clears degraded" false (Engine.degraded engine);
  check_int "no quarantine" 0 (Engine.quarantines engine)

(* ------------------------------------------------------------------ *)
(* Audit quarantine self-healing                                       *)
(* ------------------------------------------------------------------ *)

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_quarantine_self_healing () =
  (* Warm mode's warm-started alpha is the one sanctioned source of
     audit divergence: churn + queries until an audit catches one,
     then the quarantine machinery must fire. *)
  let dir = Filename.temp_file "fn_quarantine" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf_dir dir) (fun () ->
      let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:12)) in
      let cfg =
        { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 7;
          mode = Warm.Warm; postmortem = Some dir }
      in
      let engine = Engine.create ~cfg view in
      let r = rng () in
      let divergent = ref 0 in
      let rounds = ref 0 in
      while !divergent = 0 && !rounds < 20 do
        incr rounds;
        (* several churn+query cycles per audit: the first query after
           an audit runs cold (audit resets the Fiedler pair), so warm
           drift only appears from the second kept-changing query on *)
        for _ = 1 to 3 do
          apply_exn engine (random_batch r engine 3);
          ignore (Engine.alpha engine : float)
        done;
        let rep = Engine.audit engine in
        if rep.Engine.faults > 0 then incr divergent
      done;
      check_bool "warm drift produced a divergent audit" true (!divergent > 0);
      check_int "quarantine counted" 1 (Engine.quarantines engine);
      check_int "stats agree" 1 (Engine.stats engine).Engine.quarantines;
      (* the post-mortem snapshot exists and binds to (seed, n) *)
      let files = Array.to_list (Sys.readdir dir) in
      check_int "one post-mortem written" 1 (List.length files);
      let pm = Filename.concat dir (List.hd files) in
      (match
         Fn_resilience.Snapshot.read ~path:pm
           ~meta:[ ("seed", Fn_obs.Jsonx.Int 7); ("n", Fn_obs.Jsonx.Int 144) ]
       with
      | Ok payload ->
        check_bool "post-mortem carries both kept sets" true
          (Option.is_some (Fn_obs.Jsonx.member "kept_incremental" payload)
          && Option.is_some (Fn_obs.Jsonx.member "kept_scratch" payload)
          && Option.is_some (Fn_obs.Jsonx.member "faulty" payload))
      | Error e -> Alcotest.fail ("post-mortem unreadable: " ^ e));
      (* a wrong binding refuses the post-mortem *)
      (match
         Fn_resilience.Snapshot.read ~path:pm ~meta:[ ("seed", Fn_obs.Jsonx.Int 8) ]
       with
      | Ok _ -> Alcotest.fail "post-mortem bound to wrong seed"
      | Error _ -> ());
      (* self-healed: the immediate re-audit is clean and does not
         quarantine again *)
      let rep = Engine.audit engine in
      check_int "re-audit clean" 0 rep.Engine.faults;
      check_int "no second quarantine" 1 (Engine.quarantines engine);
      (* audit! reports the count on the wire *)
      match (Server.handle engine "audit!").Server.reply with
      | Some s -> check_bool "quarantines on the wire" true (contains s "quarantines=1")
      | None -> Alcotest.fail "no audit reply")

(* ------------------------------------------------------------------ *)
(* Snapshot restore and journal recovery                               *)
(* ------------------------------------------------------------------ *)

let test_encode_restore_roundtrip () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 3 } in
  let a = Engine.create ~cfg view in
  apply_exn a [ Event.Fault 3; Event.Fault 4 ];
  apply_exn a [ Event.Fault 20; Event.Repair 3 ];
  apply_exn a [ Event.Fault 9 ];
  let snap = Engine.encode_state a in
  let b = Engine.create ~cfg view in
  (match Engine.restore b snap with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("restore failed: " ^ e));
  check_bool "digest byte-identical" true
    (String.equal (Engine.state_digest a) (Engine.state_digest b));
  check_int "counters restored" 5 (Engine.stats b).Engine.events;
  check_int "batches restored" 3 (Engine.stats b).Engine.batches;
  (* restore refuses a non-fresh engine *)
  (match Engine.restore b snap with
  | Error e -> check_bool "non-fresh refused" true (contains e "fresh")
  | Ok () -> Alcotest.fail "restored onto live state");
  (* and malformed snapshots *)
  let c = Engine.create ~cfg view in
  (match Engine.restore c (Fn_obs.Jsonx.Str "garbage") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage restored");
  (* and a digest that does not verify *)
  let lying =
    match snap with
    | Fn_obs.Jsonx.Obj fields ->
      Fn_obs.Jsonx.Obj
        (List.map
           (function
             | "digest", _ -> ("digest", Fn_obs.Jsonx.Str "0000000000000000")
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "snapshot not an object"
  in
  let d = Engine.create ~cfg view in
  match Engine.restore d lying with
  | Error e -> check_bool "digest mismatch names both" true (contains e "mismatch")
  | Ok () -> Alcotest.fail "lying digest accepted"

let with_temp_journal f =
  let path = Filename.temp_file "fn_online" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; Fn_resilience.Journal.compact_tmp_path path ])
    (fun () -> f path)

(* Drive a journaled session the way serve does, compacting on the
   given cadence, with an optional kill injected into one compaction. *)
let record_session ?kill_at path cfg view batches ~compact_every =
  let engine = Engine.create ~cfg view in
  let j =
    match Fn_resilience.Journal.open_ ~path ~meta:[ ("seed", Fn_obs.Jsonx.Int 3) ] with
    | Ok j -> j
    | Error e -> Alcotest.fail ("journal open failed: " ^ e)
  in
  Fun.protect ~finally:(fun () -> Fn_resilience.Journal.close j) (fun () ->
      List.iteri
        (fun i evs ->
          apply_exn engine evs;
          Fn_resilience.Journal.record_trial j ~scope:Server.scope ~index:i
            (Event.batch_to_json evs);
          if (i + 1) mod compact_every = 0 then
            let on_tmp_written =
              match kill_at with
              | Some k when k = i + 1 -> fun () -> raise Exit
              | _ -> fun () -> ()
            in
            match
              Fn_resilience.Journal.compact ~on_tmp_written j ~scope:Server.scope
                ~upto:(i + 1) ~snapshot:(Engine.encode_state engine)
            with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("compact failed: " ^ e)
            | exception Exit -> ())
        batches;
      Engine.state_digest engine)

let session_batches =
  [
    [ Event.Fault 3; Event.Fault 4 ];
    [ Event.Fault 20 ];
    [ Event.Repair 3; Event.Fault 9 ];
    [ Event.Fault 40; Event.Fault 41 ];
    [ Event.Repair 9 ];
    [ Event.Fault 11 ];
  ]

let recover_digest path cfg view =
  let j =
    match Fn_resilience.Journal.open_ ~path ~meta:[ ("seed", Fn_obs.Jsonx.Int 3) ] with
    | Ok j -> j
    | Error e -> Alcotest.fail ("journal reopen failed: " ^ e)
  in
  Fun.protect ~finally:(fun () -> Fn_resilience.Journal.close j) (fun () ->
      let engine = Engine.create ~cfg view in
      match Server.recover j engine with
      | Ok next -> (next, Engine.state_digest engine)
      | Error e -> Alcotest.fail ("recover failed: " ^ e))

let test_recover_from_compacted_journal () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 3 } in
  with_temp_journal (fun path ->
      let live = record_session path cfg view session_batches ~compact_every:2 in
      let next, recovered = recover_digest path cfg view in
      check_int "recovery resumes at the tail" 6 next;
      check_bool "digest byte-identical through snapshot restore" true
        (String.equal live recovered))

let test_recover_after_killed_compaction () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 3 } in
  with_temp_journal (fun path ->
      (* the final compaction dies between tmp write and rename (an
         earlier kill would be papered over by the next successful
         compaction); the journal still holds the batch-4 snapshot
         plus the suffix batches, so recovery must land on the same
         digest anyway *)
      let live = record_session ~kill_at:6 path cfg view session_batches ~compact_every:2 in
      check_bool "stale staging file left by the kill" true
        (Sys.file_exists (Fn_resilience.Journal.compact_tmp_path path));
      let next, recovered = recover_digest path cfg view in
      check_int "recovery resumes at the tail" 6 next;
      check_bool "digest byte-identical after aborted compaction" true
        (String.equal live recovered))

(* ------------------------------------------------------------------ *)
(* Daemon kill-and-resume byte-identity (subprocess)                   *)
(* ------------------------------------------------------------------ *)

let daemon =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "faultnetd.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "faultnetd.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_daemon_kill_and_resume () =
  if not (Sys.file_exists daemon) then Alcotest.skip ()
  else begin
    let tmp suffix = Filename.temp_file "fn_online" suffix in
    let inp = tmp ".in" and out = tmp ".out" and errf = tmp ".err" in
    let journal = tmp ".jsonl" in
    Sys.remove journal;
    let args = "--topology torus:8x8 --seed 5 --alpha 1.0 --epsilon 0.5" in
    let run extra input =
      write_file inp input;
      let cmd = Printf.sprintf "%s %s %s < %s > %s 2> %s" daemon args extra inp out errf in
      check_int ("exit 0: " ^ extra) 0 (Sys.command cmd);
      read_file out
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun f -> if Sys.file_exists f then Sys.remove f)
          [ inp; out; errf; journal ])
      (fun () ->
        let b1 = "apply f3 f4 f5\n" and b2 = "apply f20 r3\n" in
        let b3 = "apply f40 f41\n" and b4 = "apply r20 f9\n" in
        let probe = "state?\nalpha?\nstats?\nquit\n" in
        (* uninterrupted reference *)
        let reference = run "" (b1 ^ b2 ^ b3 ^ b4 ^ probe) in
        (* killed session: first two batches, journaled *)
        let _ = run ("--journal " ^ journal) (b1 ^ b2) in
        (* resumed session: replays b1/b2, then continues *)
        let resumed = run ("--journal " ^ journal ^ " --resume") (b3 ^ b4 ^ probe) in
        let tail4 s =
          let lines = String.split_on_char '\n' (String.trim s) in
          let k = List.length lines in
          List.filteri (fun i _ -> i >= k - 4) lines
        in
        (* the digest, alpha and stats lines must be byte-identical to
           the uninterrupted run; earlier lines differ only in how
           many apply acks each process printed *)
        check_bool "resumed state byte-identical" true (tail4 reference = tail4 resumed);
        (* resuming with a different epsilon must be refused *)
        write_file inp "quit\n";
        let cmd =
          Printf.sprintf
            "%s --topology torus:8x8 --seed 5 --alpha 1.0 --epsilon 0.25 --journal %s \
             --resume < %s > %s 2> %s"
            daemon journal inp out errf
        in
        check_bool "mismatched epsilon refused" true (Sys.command cmd <> 0);
        check_bool "mismatch explained" true
          (let e = read_file errf in
           let rec contains i =
             i + 8 <= String.length e && (String.equal (String.sub e i 8) "mismatch" || contains (i + 1))
           in
           contains 0))
  end

let test_daemon_compaction_resume () =
  if not (Sys.file_exists daemon) then Alcotest.skip ()
  else begin
    let tmp suffix = Filename.temp_file "fn_online" suffix in
    let inp = tmp ".in" and out = tmp ".out" and errf = tmp ".err" in
    let journal = tmp ".jsonl" in
    Sys.remove journal;
    let args = "--topology torus:8x8 --seed 5 --alpha 1.0 --epsilon 0.5" in
    let run extra input =
      write_file inp input;
      let cmd = Printf.sprintf "%s %s %s < %s > %s 2> %s" daemon args extra inp out errf in
      check_int ("exit 0: " ^ extra) 0 (Sys.command cmd);
      read_file out
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun f -> if Sys.file_exists f then Sys.remove f)
          [ inp; out; errf; journal ])
      (fun () ->
        (* 12 batches, compacted after every one: the journal the kill
           leaves behind has been rewritten 12 times *)
        let batches =
          String.concat ""
            (List.init 12 (fun i ->
                 Printf.sprintf "apply f%d\n" ((i * 7) mod 64)))
        in
        (* stats? is deliberately absent from the probe: snapshot
           restore reaches the same replayable state in fewer surveys,
           and work counters are excluded from the resume contract *)
        let probe = "state?\nalpha?\nquit\n" in
        let reference = run "" (batches ^ probe) in
        let _ = run ("--journal " ^ journal ^ " --compact-every 1") batches in
        (* the compacted journal carries a snapshot and no batch prefix *)
        let jtext = read_file journal in
        check_bool "snapshot line present" true (contains jtext "\"kind\":\"snapshot\"");
        check_bool "prefix batches dropped" false (contains jtext "\"kind\":\"trial\"");
        let resumed =
          run ("--journal " ^ journal ^ " --compact-every 1 --resume") probe
        in
        let tail3 s =
          let lines = String.split_on_char '\n' (String.trim s) in
          let k = List.length lines in
          List.filteri (fun i _ -> i >= k - 3) lines
        in
        check_bool "digest and alpha byte-identical after 12 compactions" true
          (tail3 reference = tail3 resumed))
  end

let () =
  Alcotest.run "online"
    [
      ("dirty", [ case "basics" test_dirty_basics ]);
      ( "delta_bfs",
        [
          case "survey matches naive BFS" test_survey_matches_naive;
          case "survey boundary is Prune boundary" test_survey_boundary_is_prune_boundary;
          case "region marks r-neighborhood once" test_region_marks_neighborhood;
        ] );
      ( "differential",
        [
          case "mesh 8x8" test_differential_mesh;
          case "mesh 8x8 aggressive threshold" test_differential_mesh_aggressive;
          case "torus 6x6" test_differential_torus;
          case "implicit torus 8x8" test_differential_implicit_torus;
          case "expander 64/4" test_differential_expander;
        ] );
      ( "engine",
        [
          case "invalid batches are atomic" test_invalid_batch_is_atomic;
          case "coalescing last-write-wins" test_coalescing_last_write_wins;
          case "warm mode reconciles on audit" test_warm_mode_reconciles;
        ] );
      ( "protocol",
        [
          case "roundtrip" test_protocol_roundtrip;
          case "hardening: typed errors, limits, hostile bytes" test_protocol_hardening;
          case "event json roundtrip" test_event_json_roundtrip;
          case "in-process session" test_server_session;
          case "query deadline" test_query_deadline;
        ] );
      ( "fuzz",
        [
          case "10k lines: no exceptions, state only on ok" test_fuzz_10k;
          case "regression corpus replays" test_fuzz_corpus;
        ] );
      ( "shedding",
        [
          case "degraded mode serves stale stamped answers" test_shedding_degraded_mode;
          case "degraded sessions deterministic" test_shedding_deterministic;
          case "recompute clears degraded" test_recompute_clears_degraded;
          case "audit pays deferred rebuild" test_audit_pays_deferred_rebuild;
        ] );
      ("quarantine", [ case "divergent audit self-heals" test_quarantine_self_healing ]);
      ( "recovery",
        [
          case "encode/restore roundtrip" test_encode_restore_roundtrip;
          case "recover from compacted journal" test_recover_from_compacted_journal;
          case "recover after killed compaction" test_recover_after_killed_compaction;
        ] );
      ( "daemon",
        [
          case "kill-and-resume byte-identity" test_daemon_kill_and_resume;
          case "kill-and-resume with compaction" test_daemon_compaction_resume;
        ] );
    ]
