(* Fn_online: the incremental-equals-scratch differential invariant,
   the delta-BFS surveys, batch rejection atomicity, warm-mode audit
   reconciliation, the line protocol, and daemon kill-and-resume
   byte-identity through the faultnetd binary. *)

open Fn_graph
open Testutil
module Event = Fn_online.Event
module Delta_bfs = Fn_online.Delta_bfs
module Dirty = Fn_online.Dirty
module Cert = Fn_online.Cert
module Warm = Fn_online.Warm
module Engine = Fn_online.Engine
module Protocol = Fn_online.Protocol
module Server = Fn_online.Server

let rng () = Fn_prng.Rng.create 0x0417

(* ------------------------------------------------------------------ *)
(* Dirty tracker                                                       *)
(* ------------------------------------------------------------------ *)

let test_dirty_basics () =
  let d = Dirty.create 10 in
  check_bool "clean" false (Dirty.mem d 3);
  Dirty.mark d 3;
  Dirty.mark d 7;
  Dirty.mark d 3;
  check_bool "marked" true (Dirty.mem d 3);
  check_int "deduplicated" 2 (Dirty.count d);
  let seen = ref [] in
  Dirty.iter d (fun v -> seen := v :: !seen);
  check_int "iter covers marks" 2 (List.length !seen);
  Dirty.next_generation d;
  check_bool "cleared" false (Dirty.mem d 3);
  check_int "count reset" 0 (Dirty.count d);
  check_int "peak persists" 2 (Dirty.peak d);
  Alcotest.check_raises "out of range" (Invalid_argument "Dirty.mark: node out of range")
    (fun () -> Dirty.mark d 10)

(* ------------------------------------------------------------------ *)
(* Delta_bfs vs a naive reference                                      *)
(* ------------------------------------------------------------------ *)

let naive_survey view ~alive ~radius src =
  let n = Gview.num_nodes view in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Gview.iter_neighbors view u (fun v ->
        if dist.(v) < 0 && Bitset.mem alive v then begin
          dist.(v) <- dist.(u) + 1;
          if dist.(v) <= radius then Queue.add v q
        end)
  done;
  let s = ref 0 and b = ref 0 and ball = Bitset.create n in
  Array.iteri
    (fun v d ->
      if d >= 0 && d <= radius then begin
        incr s;
        Bitset.add ball v
      end
      else if d = radius + 1 then incr b)
    dist;
  (!s, !b, ball)

let random_mask r n keep =
  let m = Bitset.create n in
  for v = 0 to n - 1 do
    if Fn_prng.Rng.float r 1.0 < keep then Bitset.add m v
  done;
  m

let test_survey_matches_naive () =
  let r = rng () in
  let views =
    [
      Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:7));
      Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6));
      Fn_topology.Implicit.torus [| 5; 7 |];
    ]
  in
  List.iter
    (fun view ->
      let n = Gview.num_nodes view in
      let bfs = Delta_bfs.create view in
      for _ = 1 to 20 do
        let alive = random_mask r n 0.8 in
        match Bitset.choose alive with
        | None -> ()
        | Some src ->
          let radius = 1 + Fn_prng.Rng.int r 3 in
          let ball = Bitset.create n in
          let s, b = Delta_bfs.survey bfs ~alive ~into:ball ~radius src in
          let s', b', ball' = naive_survey view ~alive ~radius src in
          check_int "s" s' s;
          check_int "b" b' b;
          check_bool "ball" true (Bitset.equal ball' ball)
      done)
    views

let test_survey_boundary_is_prune_boundary () =
  (* the surveyed (s, b) must be exactly the |S| and |Gamma(S)| Prune
     measures on the same ball *)
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let n = Gview.num_nodes view in
  let r = rng () in
  let bfs = Delta_bfs.create view in
  for _ = 1 to 20 do
    let alive = random_mask r n 0.85 in
    match Bitset.choose alive with
    | None -> ()
    | Some src ->
      let ball = Bitset.create n in
      let s, b = Delta_bfs.survey bfs ~alive ~into:ball ~radius:2 src in
      check_int "size" (Bitset.cardinal ball) s;
      check_int "boundary" (Boundary.node_boundary_size_v ~alive view ball) b
  done

let test_region_marks_neighborhood () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let view = Gview.Csr g in
  let bfs = Delta_bfs.create view in
  let seen = Hashtbl.create 64 in
  Delta_bfs.region bfs ~radius:2 ~sources:[ 0; 63 ] (fun v ->
      check_bool "no duplicates" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ());
  (* unrestricted distance <= 2 of corner 0 (row-major 8x8): 6 nodes,
     same for corner 63, disjoint *)
  check_int "region size" 12 (Hashtbl.length seen);
  check_bool "source in" true (Hashtbl.mem seen 0);
  check_bool "dist 2 in" true (Hashtbl.mem seen 2);
  check_bool "dist 3 out" false (Hashtbl.mem seen 3)

(* ------------------------------------------------------------------ *)
(* The differential invariant: incremental == from-scratch             *)
(* ------------------------------------------------------------------ *)

let result_equal (a : Faultnet.Prune.result) (b : Faultnet.Prune.result) =
  Bitset.equal a.kept b.kept
  && a.iterations = b.iterations
  && Float.equal a.threshold b.threshold
  && List.length a.culled = List.length b.culled
  && List.for_all2
       (fun (x : Faultnet.Prune.culled) (y : Faultnet.Prune.culled) ->
         x.size = y.size && x.boundary = y.boundary && Bitset.equal x.set y.set)
       a.culled b.culled

(* Random valid batch against the engine's current fault mask: faults
   of alive nodes, repairs of faulty ones. *)
let random_batch r engine k =
  let faulty = Engine.faulty_mask engine in
  let alive = Engine.alive_mask engine in
  let pick m =
    let a = Bitset.to_array m in
    if Array.length a = 0 then None else Some a.(Fn_prng.Rng.int r (Array.length a))
  in
  let out = ref [] in
  let used = Hashtbl.create 8 in
  for _ = 1 to k do
    let repair = Fn_prng.Rng.float r 1.0 < 0.4 in
    let cand = if repair then pick faulty else pick alive in
    match cand with
    | Some v when not (Hashtbl.mem used v) ->
      Hashtbl.replace used v ();
      (* keep the mirrors current so later picks stay valid *)
      if repair then begin
        Bitset.remove faulty v;
        Bitset.add alive v;
        out := Event.Repair v :: !out
      end
      else begin
        Bitset.add faulty v;
        Bitset.remove alive v;
        out := Event.Fault v :: !out
      end
    | _ -> ()
  done;
  List.rev !out

let check_differential view ~alpha ~epsilon ~batches ~batch_size =
  let r = rng () in
  let cfg = { Engine.default_config with Engine.alpha; epsilon; seed = 99 } in
  let engine = Engine.create ~cfg view in
  for i = 1 to batches do
    let batch = random_batch r engine batch_size in
    (match Engine.apply engine batch with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "valid batch rejected: %s" (Fn_faults.Churn.error_to_string e));
    let mask = Engine.alive_mask engine in
    let scratch = Cert.scratch ~radius:2 view ~alive:mask ~alpha ~epsilon in
    check_bool
      (Printf.sprintf "batch %d: incremental result equals scratch" i)
      true
      (result_equal (Engine.result engine) scratch);
    let a_inc = Engine.alpha engine in
    let a_ref = Warm.reference ~seed:99 view ~kept:scratch.Faultnet.Prune.kept in
    check_bool
      (Printf.sprintf "batch %d: alpha byte-equal" i)
      true
      (Int64.equal (Int64.bits_of_float a_inc) (Int64.bits_of_float a_ref))
  done;
  let rep = Engine.audit engine in
  check_int "final audit clean" 0 rep.Engine.faults

let test_differential_mesh () =
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:8)) in
  check_differential view ~alpha:1.0 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_mesh_aggressive () =
  (* threshold 1.0: interior mesh balls qualify even fault-free, so
     the cascade itself (demotions, re-surveys mid-cull) is exercised
     hard from the first batch *)
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:8)) in
  check_differential view ~alpha:2.0 ~epsilon:0.5 ~batches:8 ~batch_size:3

let test_differential_torus () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6)) in
  check_differential view ~alpha:1.2 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_implicit_torus () =
  let view = Fn_topology.Implicit.torus [| 8; 8 |] in
  check_differential view ~alpha:1.2 ~epsilon:0.5 ~batches:12 ~batch_size:4

let test_differential_expander () =
  let g = Fn_topology.Expander.random_regular (rng ()) ~n:64 ~d:4 in
  check_differential (Gview.Csr g) ~alpha:1.5 ~epsilon:0.6 ~batches:10 ~batch_size:5

let test_invalid_batch_is_atomic () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:6)) in
  let engine = Engine.create view in
  (match Engine.apply engine [ Event.Fault 1; Event.Fault 2 ] with
  | Ok k -> check_int "applied" 2 k
  | Error _ -> Alcotest.fail "valid batch rejected");
  let digest = Engine.state_digest engine in
  let expect_err evs =
    match Engine.apply engine evs with
    | Ok _ -> Alcotest.fail "invalid batch accepted"
    | Error _ -> ()
  in
  expect_err [ Event.Fault 1 ] (* already faulty *);
  expect_err [ Event.Repair 5 ] (* alive *);
  expect_err [ Event.Fault 99 ] (* out of range *);
  expect_err [ Event.Fault 5; Event.Repair 5 ] (* coalesces to repair-of-alive *);
  check_bool "state unchanged by rejected batches" true
    (String.equal digest (Engine.state_digest engine));
  check_int "rejections counted" 4 (Engine.stats engine).Engine.rejected

let test_coalescing_last_write_wins () =
  let view = Gview.Csr (fst (Fn_topology.Mesh.cube ~d:2 ~side:6)) in
  let engine = Engine.create view in
  (* f3 r3 f3 coalesces to the final f3 *)
  (match Engine.apply engine [ Event.Fault 3; Event.Repair 3; Event.Fault 3 ] with
  | Ok k -> check_int "coalesced to one event" 1 k
  | Error _ -> Alcotest.fail "coalescible batch rejected");
  check_bool "node 3 dead" false (Engine.is_alive engine 3);
  check_int "one event counted" 1 (Engine.stats engine).Engine.events

let test_warm_mode_reconciles () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:12)) in
  let cfg =
    { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5; seed = 7;
      mode = Warm.Warm }
  in
  let engine = Engine.create ~cfg view in
  let r = rng () in
  for _ = 1 to 6 do
    let batch = random_batch r engine 3 in
    (match Engine.apply engine batch with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "valid batch rejected");
    ignore (Engine.alpha engine : float)
  done;
  let s = Engine.stats engine in
  check_bool "warm path exercised" true (s.Engine.alpha_computes > 0);
  ignore (Engine.audit engine : Engine.audit_report);
  (* post-audit the cached alpha must be the cold reference *)
  let kept = (Engine.result engine).Faultnet.Prune.kept in
  let a_ref = Warm.reference ~seed:7 view ~kept in
  check_bool "reconciled to cold reference" true
    (Int64.equal (Int64.bits_of_float (Engine.alpha engine)) (Int64.bits_of_float a_ref))

(* ------------------------------------------------------------------ *)
(* Protocol and in-process server                                      *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let cmds =
    [
      Protocol.Alive 3;
      Protocol.Certificate 0;
      Protocol.Alpha;
      Protocol.Apply [ Event.Fault 1; Event.Repair 2 ];
      Protocol.Stats;
      Protocol.Audit;
      Protocol.State;
      Protocol.Quit;
    ]
  in
  List.iter
    (fun c ->
      match Protocol.parse (Protocol.render c) with
      | Ok (Some c') -> check_bool ("roundtrip " ^ Protocol.render c) true (c = c')
      | _ -> Alcotest.fail ("roundtrip failed: " ^ Protocol.render c))
    cmds;
  (match Protocol.parse "  # comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment not ignored");
  (match Protocol.parse "" with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank not ignored");
  (match Protocol.parse "alive? x" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad node id accepted");
  (match Protocol.parse "apply f1 zap" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad token accepted");
  match Protocol.parse "frobnicate" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown command accepted"

let test_event_json_roundtrip () =
  let batch = [ Event.Fault 12; Event.Repair 0; Event.Fault 999 ] in
  (match Event.batch_of_json (Event.batch_to_json batch) with
  | Some b -> check_bool "json roundtrip" true (b = batch)
  | None -> Alcotest.fail "json roundtrip failed");
  match Event.batch_of_json (Fn_obs.Jsonx.Str "nope") with
  | None -> ()
  | Some _ -> Alcotest.fail "bad json accepted"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let test_server_session () =
  let view = Gview.Csr (fst (Fn_topology.Torus.cube ~d:2 ~side:8)) in
  let cfg = { Engine.default_config with Engine.alpha = 1.0; epsilon = 0.5 } in
  let engine = Engine.create ~cfg view in
  let say line = Server.handle engine line in
  let expect line want =
    match (say line).Server.reply with
    | Some got -> check_bool (line ^ " -> " ^ want) true (String.equal want got)
    | None -> Alcotest.fail ("no reply to " ^ line)
  in
  expect "alive? 5" "ok true";
  expect "apply f5 f6" "ok applied=2 alive=62";
  expect "alive? 5" "ok false";
  expect "apply f5" "err fault of already-faulty node 5";
  expect "alive? 999" "err node 999 out of range";
  (match (say "alpha?").Server.reply with
  | Some s -> check_bool "alpha ok" true (starts_with ~prefix:"ok 0x" s)
  | None -> Alcotest.fail "no alpha reply");
  (match (say "state?").Server.reply with
  | Some s -> check_bool "digest ok" true (starts_with ~prefix:"ok digest=" s)
  | None -> Alcotest.fail "no state reply");
  (match (say "audit!").Server.reply with
  | Some s -> check_bool "audit clean" true (starts_with ~prefix:"ok " s && not (starts_with ~prefix:"ok kept=false" s))
  | None -> Alcotest.fail "no audit reply");
  check_bool "comment ignored" true (Option.is_none (say "# hi").Server.reply);
  let out = say "quit" in
  check_bool "quit stops" true out.Server.quit

(* ------------------------------------------------------------------ *)
(* Daemon kill-and-resume byte-identity (subprocess)                   *)
(* ------------------------------------------------------------------ *)

let daemon =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "faultnetd.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "faultnetd.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_daemon_kill_and_resume () =
  if not (Sys.file_exists daemon) then Alcotest.skip ()
  else begin
    let tmp suffix = Filename.temp_file "fn_online" suffix in
    let inp = tmp ".in" and out = tmp ".out" and errf = tmp ".err" in
    let journal = tmp ".jsonl" in
    Sys.remove journal;
    let args = "--topology torus:8x8 --seed 5 --alpha 1.0 --epsilon 0.5" in
    let run extra input =
      write_file inp input;
      let cmd = Printf.sprintf "%s %s %s < %s > %s 2> %s" daemon args extra inp out errf in
      check_int ("exit 0: " ^ extra) 0 (Sys.command cmd);
      read_file out
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun f -> if Sys.file_exists f then Sys.remove f)
          [ inp; out; errf; journal ])
      (fun () ->
        let b1 = "apply f3 f4 f5\n" and b2 = "apply f20 r3\n" in
        let b3 = "apply f40 f41\n" and b4 = "apply r20 f9\n" in
        let probe = "state?\nalpha?\nstats?\nquit\n" in
        (* uninterrupted reference *)
        let reference = run "" (b1 ^ b2 ^ b3 ^ b4 ^ probe) in
        (* killed session: first two batches, journaled *)
        let _ = run ("--journal " ^ journal) (b1 ^ b2) in
        (* resumed session: replays b1/b2, then continues *)
        let resumed = run ("--journal " ^ journal ^ " --resume") (b3 ^ b4 ^ probe) in
        let tail4 s =
          let lines = String.split_on_char '\n' (String.trim s) in
          let k = List.length lines in
          List.filteri (fun i _ -> i >= k - 4) lines
        in
        (* the digest, alpha and stats lines must be byte-identical to
           the uninterrupted run; earlier lines differ only in how
           many apply acks each process printed *)
        check_bool "resumed state byte-identical" true (tail4 reference = tail4 resumed);
        (* resuming with a different epsilon must be refused *)
        write_file inp "quit\n";
        let cmd =
          Printf.sprintf
            "%s --topology torus:8x8 --seed 5 --alpha 1.0 --epsilon 0.25 --journal %s \
             --resume < %s > %s 2> %s"
            daemon journal inp out errf
        in
        check_bool "mismatched epsilon refused" true (Sys.command cmd <> 0);
        check_bool "mismatch explained" true
          (let e = read_file errf in
           let rec contains i =
             i + 8 <= String.length e && (String.equal (String.sub e i 8) "mismatch" || contains (i + 1))
           in
           contains 0))
  end

let () =
  Alcotest.run "online"
    [
      ("dirty", [ case "basics" test_dirty_basics ]);
      ( "delta_bfs",
        [
          case "survey matches naive BFS" test_survey_matches_naive;
          case "survey boundary is Prune boundary" test_survey_boundary_is_prune_boundary;
          case "region marks r-neighborhood once" test_region_marks_neighborhood;
        ] );
      ( "differential",
        [
          case "mesh 8x8" test_differential_mesh;
          case "mesh 8x8 aggressive threshold" test_differential_mesh_aggressive;
          case "torus 6x6" test_differential_torus;
          case "implicit torus 8x8" test_differential_implicit_torus;
          case "expander 64/4" test_differential_expander;
        ] );
      ( "engine",
        [
          case "invalid batches are atomic" test_invalid_batch_is_atomic;
          case "coalescing last-write-wins" test_coalescing_last_write_wins;
          case "warm mode reconciles on audit" test_warm_mode_reconciles;
        ] );
      ( "protocol",
        [
          case "roundtrip" test_protocol_roundtrip;
          case "event json roundtrip" test_event_json_roundtrip;
          case "in-process session" test_server_session;
        ] );
      ("daemon", [ case "kill-and-resume byte-identity" test_daemon_kill_and_resume ]);
    ]
