open Fn_parallel
open Testutil

let test_map_matches_sequential () =
  let input = Array.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      let got = Par.map ~domains f input in
      check_bool (Printf.sprintf "domains=%d" domains) true (got = expected))
    [ 1; 2; 4; 7 ]

let test_map_preserves_order () =
  let got = Par.map ~domains:4 string_of_int (Array.init 37 Fun.id) in
  Array.iteri (fun i s -> if s <> string_of_int i then Alcotest.fail "order broken") got

let test_map_empty_and_singleton () =
  check_bool "empty" true (Par.map ~domains:4 succ [||] = [||]);
  check_bool "singleton" true (Par.map ~domains:4 succ [| 41 |] = [| 42 |])

let test_init () =
  check_bool "init" true (Par.init ~domains:3 10 (fun i -> i * 2) = Array.init 10 (fun i -> i * 2))

let test_trials_deterministic_across_domains () =
  let job rng = Fn_prng.Rng.int rng 1_000_000 in
  let run domains =
    let rng = Fn_prng.Rng.create 2024 in
    Par.trials ~domains ~rng 16 job
  in
  let seq = run 1 in
  let par = run 6 in
  check_bool "parallel = sequential" true (seq = par)

let test_trials_distinct_generators () =
  let rng = Fn_prng.Rng.create 1 in
  let outs = Par.trials ~domains:2 ~rng 8 (fun r -> Fn_prng.Rng.bits64 r) in
  let distinct = Array.to_list outs |> List.sort_uniq Int64.compare |> List.length in
  check_int "independent streams" 8 distinct

(* Regression: a raising job must surface as Job_failed carrying the
   job's input index, on both the sequential and the parallel path, and
   the lowest failing index must win when several chunks fail. *)

let catch_job_failed f =
  match f () with
  | (_ : int array) -> Alcotest.fail "expected Job_failed"
  | exception Par.Job_failed { index; exn } -> (index, exn)

let test_job_failed_sequential () =
  let input = Array.init 4 Fun.id in
  let index, exn =
    catch_job_failed (fun () ->
        Par.map ~domains:1 (fun i -> if i = 2 then failwith "boom" else i) input)
  in
  check_int "failing index" 2 index;
  check_bool "original exception kept" true (exn = Stdlib.Failure "boom")

let test_job_failed_parallel () =
  let input = Array.init 16 Fun.id in
  let index, exn =
    catch_job_failed (fun () ->
        Par.map ~domains:4 (fun i -> if i = 10 then failwith "boom" else i) input)
  in
  check_int "failing index" 10 index;
  check_bool "original exception kept" true (exn = Stdlib.Failure "boom")

let test_job_failed_lowest_index_wins () =
  (* indices 3 and 12 land in different chunks of a 4-domain split *)
  let input = Array.init 16 Fun.id in
  let index, _ =
    catch_job_failed (fun () ->
        Par.map ~domains:4 (fun i -> if i = 3 || i = 12 then raise Exit else i) input)
  in
  check_int "lowest failing index" 3 index

let test_job_failed_siblings_complete () =
  (* a crash in one chunk stops only that chunk: with 4 domains over 16
     inputs, failing at index 0 skips the rest of chunk [0..3] while the
     other 12 jobs still run to completion before the join re-raises *)
  let ran = Atomic.make 0 in
  let index, _ =
    catch_job_failed (fun () ->
        Par.map ~domains:4
          (fun i ->
            Atomic.incr ran;
            if i = 0 then raise Exit;
            i)
          (Array.init 16 Fun.id))
  in
  check_int "failing index" 0 index;
  check_int "sibling chunks ran to completion" 13 (Atomic.get ran)

(* ---- Pool ---- *)

let pool_sum pool n =
  (* disjoint-range parallel sum into per-worker slots *)
  let workers = Par.Pool.size pool in
  let chunk = (n + workers - 1) / workers in
  let partial = Array.make workers 0 in
  Par.Pool.run pool (fun w ->
      let lo = w * chunk and hi = min n ((w + 1) * chunk) in
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + i
      done;
      partial.(w) <- !s);
  Array.fold_left ( + ) 0 partial

let test_pool_matches_sequential () =
  let n = 1000 in
  let expected = n * (n - 1) / 2 in
  List.iter
    (fun domains ->
      Par.Pool.with_pool ~domains (fun pool ->
          check_int (Printf.sprintf "domains=%d" domains) expected (pool_sum pool n)))
    [ 1; 2; 4; 7 ]

let test_pool_reuse () =
  (* many runs on one pool — the spectral matvec access pattern *)
  Par.Pool.with_pool ~domains:4 (fun pool ->
      for n = 1 to 200 do
        Alcotest.(check int) "reused" (n * (n - 1) / 2) (pool_sum pool n)
      done)

let test_pool_size_one_inline () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      check_int "size" 1 (Par.Pool.size pool);
      let ran = ref (-1) in
      (* lint: allow par-capture-mutation — size-1 pool runs the job inline
         on the calling domain, so the captured ref is not shared *)
      Par.Pool.run pool (fun w -> ran := w);
      check_int "worker 0 inline" 0 !ran)

let test_pool_job_failed () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      match Par.Pool.run pool (fun w -> if w >= 2 then failwith "boom") with
      | () -> Alcotest.fail "expected Job_failed"
      | exception Par.Job_failed { index; exn = Failure m } ->
        check_int "lowest failing worker" 2 index;
        Alcotest.(check string) "original exn" "boom" m
      | exception e -> raise e);
  (* the pool survives a failing job *)
  Par.Pool.with_pool ~domains:4 (fun pool ->
      (try Par.Pool.run pool (fun _ -> failwith "boom") with Par.Job_failed _ -> ());
      check_int "usable after failure" 10 (pool_sum pool 5))

let test_pool_shutdown_idempotent () =
  let pool = Par.Pool.create ~domains:3 () in
  check_int "before" 3 (pool_sum pool 3);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* post-shutdown runs execute only worker 0 inline, per contract *)
  let visited = ref [] in
  (* lint: allow par-capture-mutation — after shutdown only worker 0 runs,
     inline on the calling domain; that single-threadedness is the point *)
  Par.Pool.run pool (fun w -> visited := w :: !visited);
  check_bool "only worker 0" true (!visited = [ 0 ])

let test_default_domains_reasonable () =
  let d = Par.default_domains () in
  check_bool "within [1,8]" true (d >= 1 && d <= 8)

let () =
  Alcotest.run "parallel"
    [
      ( "par",
        [
          case "map matches sequential" test_map_matches_sequential;
          case "order preserved" test_map_preserves_order;
          case "empty/singleton" test_map_empty_and_singleton;
          case "init" test_init;
          case "trials deterministic" test_trials_deterministic_across_domains;
          case "trials independent" test_trials_distinct_generators;
          case "job failure sequential" test_job_failed_sequential;
          case "job failure parallel" test_job_failed_parallel;
          case "job failure lowest index" test_job_failed_lowest_index_wins;
          case "job failure isolation" test_job_failed_siblings_complete;
          case "default domains" test_default_domains_reasonable;
        ] );
      ( "pool",
        [
          case "matches sequential" test_pool_matches_sequential;
          case "reuse across runs" test_pool_reuse;
          case "size one inline" test_pool_size_one_inline;
          case "job failure" test_pool_job_failed;
          case "shutdown idempotent" test_pool_shutdown_idempotent;
        ] );
    ]
