open Fn_prng
open Testutil

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    if Rng.bits64 a <> Rng.bits64 b then Alcotest.fail "same seed, different stream"
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 c then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 1 in
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  check_bool "copy continues identically" true (va = vb);
  ignore (Rng.bits64 a);
  let va2 = Rng.bits64 a and vb2 = Rng.bits64 b in
  check_bool "streams diverge after different draws" true (va2 <> vb2 || va = vb)

let test_split_determinism () =
  let a = Rng.create 9 and b = Rng.create 9 in
  let ca = Rng.split a and cb = Rng.split b in
  for _ = 1 to 50 do
    if Rng.bits64 ca <> Rng.bits64 cb then Alcotest.fail "split not deterministic"
  done

let test_split_independent () =
  let r = Rng.create 5 in
  let kids = Rng.split_n r 4 in
  let outputs = Array.map (fun k -> Rng.bits64 k) kids in
  let distinct = Array.to_list outputs |> List.sort_uniq Int64.compare |> List.length in
  check_int "children produce distinct values" 4 distinct

let test_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of bounds: %d" v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_int_uniform_ish () =
  let r = Rng.create 21 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int trials /. 8.0 in
      if abs_float (float_of_int c -. expected) > 5.0 *. sqrt expected then
        Alcotest.failf "bucket %d way off: %d vs %.0f" i c expected)
    counts

let test_unit_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.unit_float r in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "unit_float out of range: %f" v
  done

let test_bernoulli_extremes () =
  let r = Rng.create 4 in
  check_bool "p=0 never" false (Rng.bernoulli r 0.0);
  check_bool "p=1 always" true (Rng.bernoulli r 1.0)

let test_permutation () =
  let r = Rng.create 11 in
  let p = Rng.permutation r 50 in
  check_bool "is permutation" true
    (List.sort Int.compare (Array.to_list p) = List.init 50 Fun.id)

let test_sample () =
  let r = Rng.create 13 in
  (* sparse and dense regimes *)
  List.iter
    (fun (n, k) ->
      let s = Rng.sample r n k in
      check_int "sample size" k (Array.length s);
      let sorted = List.sort_uniq Int.compare (Array.to_list s) in
      check_int "distinct" k (List.length sorted);
      List.iter (fun v -> if v < 0 || v >= n then Alcotest.fail "sample out of range") sorted)
    [ (100, 3); (100, 80); (10, 10); (10, 0) ];
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample: need 0 <= k <= n") (fun () ->
      ignore (Rng.sample r 3 4))

let test_choose () =
  let r = Rng.create 17 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 20 do
    let v = Rng.choose r a in
    if v < 1 || v > 3 then Alcotest.fail "choose out of range"
  done

let test_geometric () =
  let r = Rng.create 23 in
  check_int "p=1 is 0" 0 (Dist.geometric r 1.0);
  let total = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    total := !total + Dist.geometric r 0.25
  done;
  (* mean = (1-p)/p = 3 *)
  let mean = float_of_int !total /. float_of_int trials in
  check_float_eps 0.15 "geometric mean" 3.0 mean

let test_binomial () =
  let r = Rng.create 29 in
  check_int "n=0" 0 (Dist.binomial r 0 0.5);
  check_int "p=0" 0 (Dist.binomial r 100 0.0);
  check_int "p=1" 100 (Dist.binomial r 100 1.0);
  let trials = 20_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Dist.binomial r 50 0.3
  done;
  let mean = float_of_int !total /. float_of_int trials in
  check_float_eps 0.3 "binomial mean np=15" 15.0 mean;
  (* large-np branch *)
  let v = Dist.binomial r 100_000 0.4 in
  check_bool "large np in range" true (v >= 0 && v <= 100_000);
  check_bool "large np near mean" true (abs (v - 40_000) < 2_000)

let test_exponential_normal () =
  let r = Rng.create 31 in
  let trials = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to trials do
    total := !total +. Dist.exponential r 2.0
  done;
  check_float_eps 0.03 "exponential mean 1/lambda" 0.5 (!total /. float_of_int trials);
  let total = ref 0.0 in
  for _ = 1 to trials do
    total := !total +. Dist.normal r 3.0 1.5
  done;
  check_float_eps 0.05 "normal mean" 3.0 (!total /. float_of_int trials)

let test_categorical () =
  let r = Rng.create 37 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.categorical r [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero-weight class never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  check_float_eps 0.25 "weight ratio" 3.0 ratio;
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Dist.categorical: weights must have positive sum") (fun () ->
      ignore (Dist.categorical r [| 0.0 |]))

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          case "determinism" test_determinism;
          case "copy" test_copy_independent;
          case "split determinism" test_split_determinism;
          case "split independence" test_split_independent;
          case "int bounds" test_int_bounds;
          case "int uniformity" test_int_uniform_ish;
          case "unit_float range" test_unit_float_range;
          case "bernoulli extremes" test_bernoulli_extremes;
          case "permutation" test_permutation;
          case "sample" test_sample;
          case "choose" test_choose;
        ] );
      ( "dist",
        [
          case "geometric" test_geometric;
          case "binomial" test_binomial;
          case "exponential/normal" test_exponential_normal;
          case "categorical" test_categorical;
        ] );
    ]
