open Fn_graph
open Faultnet
open Testutil

let rng () = Fn_prng.Rng.create 808

let test_prune_noop_on_clean_expander () =
  let g = Fn_topology.Expander.random_regular (rng ()) ~n:128 ~d:6 in
  let alive = Bitset.create_full 128 in
  let res = Prune.run ~rng:(rng ()) g ~alive ~alpha:0.5 ~epsilon:0.5 in
  check_int "nothing culled" 0 (Prune.total_culled res);
  check_int "all kept" 128 (Bitset.cardinal res.Prune.kept);
  check_bool "certificates" true (Prune.verify_certificates g ~alive res)

let test_prune_culls_disconnected_fragment () =
  (* an expander plus a dangling path: the path has terrible expansion
     and must be culled once a fault separates it *)
  let base = Fn_topology.Expander.random_regular (rng ()) ~n:64 ~d:4 in
  let b = Builder.create 74 in
  Graph.iter_edges base (fun u v -> Builder.add_edge b u v);
  for i = 64 to 72 do
    Builder.add_edge b i (i + 1)
  done;
  Builder.add_edge b 0 64;
  let g = Builder.to_graph b in
  (* fault the articulation node 64: the tail 65..73 disconnects *)
  let faults = Fn_faults.Fault_set.of_faulty_list 74 [ 64 ] in
  let res = Prune.run ~rng:(rng ()) g ~alive:faults.Fn_faults.Fault_set.alive ~alpha:0.5 ~epsilon:0.5 in
  check_bool "tail culled" true (Prune.total_culled res >= 9);
  check_bool "kept part is the expander" true (Bitset.cardinal res.Prune.kept >= 63);
  check_bool "certificates" true
    (Prune.verify_certificates g ~alive:faults.Fn_faults.Fault_set.alive res)

let test_prune_threshold_semantics () =
  (* path graph: with alpha*epsilon >= 1 every split is culled down to
     nothing (any prefix has boundary 1) *)
  let g = Fn_topology.Basic.path 16 in
  let alive = Bitset.create_full 16 in
  let res = Prune.run ~rng:(rng ()) g ~alive ~alpha:4.0 ~epsilon:0.5 in
  check_bool "aggressive threshold shreds the path" true (Bitset.cardinal res.Prune.kept <= 1);
  check_bool "certificates" true (Prune.verify_certificates g ~alive res)

let test_prune_parameter_validation () =
  let g = Fn_topology.Basic.path 4 in
  let alive = Bitset.create_full 4 in
  Alcotest.check_raises "alpha" (Invalid_argument "Prune.run: alpha must be positive")
    (fun () -> ignore (Prune.run g ~alive ~alpha:0.0 ~epsilon:0.5));
  Alcotest.check_raises "epsilon" (Invalid_argument "Prune.run: need 0 < epsilon < 1")
    (fun () -> ignore (Prune.run g ~alive ~alpha:1.0 ~epsilon:1.0))

let test_prune_kept_culled_partition () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g 0.15 in
  let alive = faults.Fn_faults.Fault_set.alive in
  let res = Prune.run ~rng:(rng ()) g ~alive ~alpha:0.17 ~epsilon:0.5 in
  (* kept ∪ culled = alive, disjoint *)
  let recon = Bitset.copy res.Prune.kept in
  List.iter
    (fun c ->
      check_bool "culled disjoint from kept" true (Bitset.disjoint c.Prune.set res.Prune.kept);
      Bitset.union_into recon c.Prune.set)
    res.Prune.culled;
  check_bool "partition" true (Bitset.equal recon alive);
  check_bool "certificates" true (Prune.verify_certificates g ~alive res)

let test_theorem21_bound_holds () =
  (* the E1 scenario in miniature, with the theorem's accounting *)
  let n = 256 in
  let g = Fn_topology.Expander.random_regular (rng ()) ~n ~d:6 in
  let alpha =
    (Fn_expansion.Estimate.run ~rng:(rng ()) g Fn_expansion.Cut.Node).Fn_expansion.Estimate.value
  in
  let k = 2.0 in
  let f = Theorem.thm21_max_faults ~alpha ~n ~k in
  let faults = Fn_faults.Adversary.random (rng ()) g ~budget:f in
  let alive = faults.Fn_faults.Fault_set.alive in
  let res = Prune.run ~rng:(rng ()) g ~alive ~alpha ~epsilon:(Theorem.thm21_epsilon ~k) in
  let kept = Bitset.cardinal res.Prune.kept in
  check_bool "size bound" true
    (float_of_int kept >= Theorem.thm21_min_kept ~alpha ~n ~k ~f -. 1e-9);
  check_bool "certificates" true (Prune.verify_certificates g ~alive res)

let test_verify_rejects_tampering () =
  let g = Fn_topology.Basic.path 16 in
  let alive = Bitset.create_full 16 in
  let res = Prune.run ~rng:(rng ()) g ~alive ~alpha:4.0 ~epsilon:0.5 in
  match res.Prune.culled with
  | [] -> Alcotest.fail "expected culls"
  | first :: _ ->
    (* tamper with a certificate *)
    let tampered = { res with Prune.culled = [ { first with Prune.boundary = first.Prune.boundary + 1 } ] } in
    check_bool "tampered rejected" false (Prune.verify_certificates g ~alive tampered)

let test_prune_idempotent () =
  (* once Prune stops, running it again on the survivor (same seed,
     same threshold) must cull nothing *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (Fn_prng.Rng.create 3) g 0.2 in
  let alive = faults.Fn_faults.Fault_set.alive in
  let res = Prune.run ~rng:(Fn_prng.Rng.create 5) g ~alive ~alpha:0.17 ~epsilon:0.5 in
  let again =
    Prune.run ~rng:(Fn_prng.Rng.create 5) g ~alive:res.Prune.kept ~alpha:0.17 ~epsilon:0.5
  in
  check_int "no further culls" 0 (Prune.total_culled again);
  check_bool "kept unchanged" true (Bitset.equal res.Prune.kept again.Prune.kept)

let prop_prune_random_graphs_certify =
  prop "prune certificates verify on random graphs + faults" ~count:40
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let n = Graph.num_nodes g in
      let r = Fn_prng.Rng.create 17 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.2 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Prune.run ~rng:r g ~alive ~alpha:0.5 ~epsilon:0.5 in
        Prune.verify_certificates g ~alive res
        && Bitset.cardinal res.Prune.kept + Prune.total_culled res = Bitset.cardinal alive
        && n >= Bitset.cardinal res.Prune.kept
      end)

(* The run computes round boundaries through the incremental
   Boundary.Scratch; a naive replay with the allocating
   node_boundary_size must see the same numbers round for round. *)
let prop_round_boundaries_match_naive_replay =
  prop "recorded round boundaries equal a naive replay" ~count:40
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let r = Fn_prng.Rng.create 23 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.25 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Prune.run ~rng:r g ~alive ~alpha:0.5 ~epsilon:0.5 in
        let current = Bitset.copy alive in
        List.for_all
          (fun c ->
            let expected = Boundary.node_boundary_size ~alive:current g c.Prune.set in
            let ok = expected = c.Prune.boundary in
            Bitset.diff_into current c.Prune.set;
            ok)
          res.Prune.culled
      end)

let test_domains_one_equals_default () =
  (* the ~domains:1 path must be the byte-identical sequential path *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (Fn_prng.Rng.create 3) g 0.2 in
  let alive = faults.Fn_faults.Fault_set.alive in
  let a = Prune.run ~rng:(Fn_prng.Rng.create 5) g ~alive ~alpha:0.17 ~epsilon:0.5 in
  let b = Prune.run ~rng:(Fn_prng.Rng.create 5) ~domains:1 g ~alive ~alpha:0.17 ~epsilon:0.5 in
  check_bool "kept equal" true (Bitset.equal a.Prune.kept b.Prune.kept);
  check_int "same rounds" a.Prune.iterations b.Prune.iterations;
  check_bool "same certificates" true
    (List.for_all2
       (fun x y ->
         Bitset.equal x.Prune.set y.Prune.set
         && x.Prune.size = y.Prune.size
         && x.Prune.boundary = y.Prune.boundary)
       a.Prune.culled b.Prune.culled)

let () =
  Alcotest.run "prune"
    [
      ( "behaviour",
        [
          case "noop on clean expander" test_prune_noop_on_clean_expander;
          case "culls dangling fragment" test_prune_culls_disconnected_fragment;
          case "threshold semantics" test_prune_threshold_semantics;
          case "parameter validation" test_prune_parameter_validation;
          case "kept/culled partition" test_prune_kept_culled_partition;
          case "theorem 2.1 accounting" test_theorem21_bound_holds;
          case "verify rejects tampering" test_verify_rejects_tampering;
          case "idempotent" test_prune_idempotent;
          case "domains=1 equals default" test_domains_one_equals_default;
        ] );
      ( "properties",
        [ prop_prune_random_graphs_certify; prop_round_boundaries_match_naive_replay ] );
    ]
