open Fn_graph
open Faultnet
open Testutil

let rng () = Fn_prng.Rng.create 909

let test_noop_on_clean_torus () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:8 in
  let alive = Bitset.create_full 64 in
  (* true alpha_e = 8/32 = 0.25; eps 0.125 -> threshold 0.03, nothing
     in the clean torus is that bad *)
  let res = Prune2.run ~rng:(rng ()) g ~alive ~alpha_e:0.25 ~epsilon:0.125 in
  check_int "nothing culled" 0 (Prune2.total_culled res);
  check_bool "certificates" true (Prune2.verify_certificates g ~alive res)

let test_culls_isolated_fragment () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:8 in
  (* kill a ring around a 2x2 block: the block is isolated with zero
     edge boundary *)
  let block = [ 9; 10; 17; 18 ] in
  let ring = [ 0; 1; 2; 3; 8; 11; 16; 19; 24; 25; 26; 27 ] in
  let faults = Fn_faults.Fault_set.of_faulty_list 64 ring in
  let alive = faults.Fn_faults.Fault_set.alive in
  let res = Prune2.run ~rng:(rng ()) g ~alive ~alpha_e:0.25 ~epsilon:0.125 in
  List.iter
    (fun v ->
      check_bool (Printf.sprintf "block node %d culled" v) false
        (Bitset.mem res.Prune2.kept v))
    block;
  check_bool "certificates" true (Prune2.verify_certificates g ~alive res)

let test_culled_sets_connected_and_compact_shape () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g 0.2 in
  let alive = faults.Fn_faults.Fault_set.alive in
  if Bitset.cardinal alive >= 2 then begin
    let res = Prune2.run ~rng:(rng ()) g ~alive ~alpha_e:0.125 ~epsilon:0.25 in
    List.iter
      (fun c ->
        check_bool "found set connected" true (Dfs.is_connected_subset g c.Prune2.found);
        check_bool "compacted contains or is disjoint from found" true
          (Bitset.subset c.Prune2.found c.Prune2.compacted
          || Bitset.disjoint c.Prune2.found c.Prune2.compacted))
      res.Prune2.culled;
    check_bool "certificates" true (Prune2.verify_certificates g ~alive res)
  end

let test_parameter_validation () =
  let g = Fn_topology.Basic.path 4 in
  let alive = Bitset.create_full 4 in
  Alcotest.check_raises "alpha_e" (Invalid_argument "Prune2.run: alpha_e must be positive")
    (fun () -> ignore (Prune2.run g ~alive ~alpha_e:(-1.0) ~epsilon:0.5));
  Alcotest.check_raises "epsilon" (Invalid_argument "Prune2.run: need 0 < epsilon < 1")
    (fun () -> ignore (Prune2.run g ~alive ~alpha_e:1.0 ~epsilon:0.0))

let test_partition_accounting () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g 0.25 in
  let alive = faults.Fn_faults.Fault_set.alive in
  if Bitset.cardinal alive >= 2 then begin
    let res = Prune2.run ~rng:(rng ()) g ~alive ~alpha_e:0.3 ~epsilon:0.4 in
    check_int "kept + culled = alive"
      (Bitset.cardinal alive)
      (Bitset.cardinal res.Prune2.kept + Prune2.total_culled res)
  end

let test_theorem34_regime () =
  (* at the theorem's fault probability essentially nothing fails, so
     the guarantee holds trivially — this is the E6 sanity row *)
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:8 in
  let n = Graph.num_nodes g in
  let delta = Graph.max_degree g in
  let p = Theorem.thm34_max_fault_probability ~delta ~sigma:2.0 in
  let eps = Theorem.thm34_max_epsilon ~delta in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g p in
  let alive = faults.Fn_faults.Fault_set.alive in
  let res = Prune2.run ~rng:(rng ()) g ~alive ~alpha_e:0.25 ~epsilon:eps in
  check_bool "kept >= n/2" true
    (float_of_int (Bitset.cardinal res.Prune2.kept) >= Theorem.thm34_guaranteed_size ~n)

let prop_certificates_on_random_graphs =
  prop "prune2 certificates verify on random graphs + faults" ~count:40
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let r = Fn_prng.Rng.create 23 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.2 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Prune2.run ~rng:r g ~alive ~alpha_e:0.5 ~epsilon:0.5 in
        Prune2.verify_certificates g ~alive res
      end)

(* Round edge boundaries come from the reused Boundary.Scratch; a
   naive replay with the allocating edge_boundary_size must agree. *)
let prop_round_edge_boundaries_match_naive_replay =
  prop "recorded round edge boundaries equal a naive replay" ~count:40
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let r = Fn_prng.Rng.create 31 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.25 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Prune2.run ~rng:r g ~alive ~alpha_e:0.5 ~epsilon:0.5 in
        let current = Bitset.copy alive in
        List.for_all
          (fun c ->
            let expected = Boundary.edge_boundary_size ~alive:current g c.Prune2.compacted in
            let ok = expected = c.Prune2.edge_boundary in
            Bitset.diff_into current c.Prune2.compacted;
            ok)
          res.Prune2.culled
      end)

let () =
  Alcotest.run "prune2"
    [
      ( "behaviour",
        [
          case "noop on clean torus" test_noop_on_clean_torus;
          case "culls isolated fragment" test_culls_isolated_fragment;
          case "culled sets shape" test_culled_sets_connected_and_compact_shape;
          case "parameter validation" test_parameter_validation;
          case "partition accounting" test_partition_accounting;
          case "theorem 3.4 regime" test_theorem34_regime;
        ] );
      ( "properties",
        [ prop_certificates_on_random_graphs; prop_round_edge_boundaries_match_naive_replay ] );
    ]
