(* Tests for Fn_resilience: policy validation and backoff schedules,
   supervised runs (retry, deadline, cancellation, rng rollback,
   non-retryable propagation), deterministic chaos injection,
   crash-isolated parallel trials, the JSONL checkpoint journal, and a
   kill-and-resume end-to-end run of the experiments binary. *)

open Fn_resilience
open Testutil
module Rng = Fn_prng.Rng
module J = Fn_obs.Jsonx

let check_string = Alcotest.(check string)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Fast policies for tests: no real sleeping between retries. *)
let fast ?deadline_s ?(retries = 2) ?chaos ?chaos_seed () =
  Policy.make ?deadline_s ~retries ~backoff_base_s:0.0 ?chaos ?chaos_seed ()

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_validation () =
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Policy.make: retries must be >= 0") (fun () ->
      ignore (Policy.make ~retries:(-1) ()));
  Alcotest.check_raises "non-positive deadline"
    (Invalid_argument "Policy.make: deadline_s must be positive") (fun () ->
      ignore (Policy.make ~deadline_s:0.0 ()));
  Alcotest.check_raises "chaos out of range"
    (Invalid_argument "Policy.make: chaos must be in [0,1]") (fun () ->
      ignore (Policy.make ~chaos:1.5 ()));
  Alcotest.check_raises "backoff factor below one"
    (Invalid_argument "Policy.make: backoff must be non-negative with factor >= 1")
    (fun () -> ignore (Policy.make ~backoff_factor:0.5 ()));
  (* the default policy is inert: nothing that could change fault-free
     behavior is switched on *)
  check_bool "no default deadline" true (Policy.default.Policy.deadline_s = None);
  check_float "no default chaos" 0.0 Policy.default.Policy.chaos

let test_backoff_schedule () =
  let p = Policy.make ~backoff_base_s:0.01 ~backoff_factor:2.0 ~backoff_cap_s:1.0 () in
  check_float "first retry" 0.01 (Policy.backoff_s p ~attempt:1);
  check_float "second retry" 0.02 (Policy.backoff_s p ~attempt:2);
  check_float "third retry" 0.04 (Policy.backoff_s p ~attempt:3);
  let capped = Policy.make ~backoff_base_s:0.01 ~backoff_factor:2.0 ~backoff_cap_s:0.03 () in
  check_float "cap binds" 0.03 (Policy.backoff_s capped ~attempt:3);
  Alcotest.check_raises "attempt is 1-based"
    (Invalid_argument "Policy.backoff_s: attempt is 1-based") (fun () ->
      ignore (Policy.backoff_s p ~attempt:0))

(* ------------------------------------------------------------------ *)
(* Supervisor.run                                                      *)
(* ------------------------------------------------------------------ *)

let test_run_success_passthrough () =
  let attempts = ref 0 in
  match
    Supervisor.run ~policy:Policy.default ~scope:"ok" (fun () ->
        incr attempts;
        42)
  with
  | Ok v ->
    check_int "value through" 42 v;
    check_int "one attempt" 1 !attempts
  | Error (f, _) -> Alcotest.fail ("unexpected failure: " ^ Failure.to_string f)

let test_run_retry_then_success () =
  let attempts = ref 0 in
  match
    Supervisor.run ~policy:(fast ~retries:3 ()) ~scope:"flaky" (fun () ->
        incr attempts;
        if !attempts < 3 then raise Exit;
        "done")
  with
  | Ok v ->
    check_string "value" "done" v;
    check_int "two retries" 3 !attempts
  | Error (f, _) -> Alcotest.fail ("unexpected failure: " ^ Failure.to_string f)

let test_run_gave_up_causes () =
  let attempts = ref 0 in
  match
    Supervisor.run ~policy:(fast ~retries:2 ()) ~scope:"doomed" (fun () ->
        incr attempts;
        failwith (Printf.sprintf "attempt %d" !attempts))
  with
  | Ok _ -> Alcotest.fail "expected Gave_up"
  | Error (Failure.Gave_up n, causes) ->
    check_int "final verdict counts attempts" 3 n;
    check_int "all attempts ran" 3 !attempts;
    let msgs =
      List.map
        (function
          | Failure.Crashed (Stdlib.Failure m, _) -> m
          | f -> Failure.to_string f)
        causes
    in
    check_bool "causes oldest first" true
      (msgs = [ "attempt 1"; "attempt 2"; "attempt 3" ])
  | Error (f, _) -> Alcotest.fail ("wrong verdict: " ^ Failure.to_string f)

let test_run_deadline_timeout () =
  (* deadlines are post-hoc: the slow attempt completes, then counts as
     a Timeout carrying its measured duration *)
  match
    Supervisor.run
      ~policy:(fast ~deadline_s:0.001 ~retries:1 ())
      ~scope:"slow"
      (fun () -> Unix.sleepf 0.01)
  with
  | Ok () -> Alcotest.fail "expected Timeout"
  | Error (Failure.Gave_up 2, causes) ->
    check_bool "every cause is a timeout over budget" true
      (List.for_all (function Failure.Timeout t -> t >= 0.001 | _ -> false) causes);
    check_int "one timeout per attempt" 2 (List.length causes)
  | Error (f, _) -> Alcotest.fail ("wrong verdict: " ^ Failure.to_string f)

let test_run_deadline_generous () =
  match
    Supervisor.run ~policy:(fast ~deadline_s:30.0 ()) ~scope:"fast" (fun () -> 7)
  with
  | Ok v -> check_int "under budget" 7 v
  | Error (f, _) -> Alcotest.fail ("unexpected failure: " ^ Failure.to_string f)

let test_run_cancelled () =
  let attempts = ref 0 in
  match
    Supervisor.run ~policy:Policy.default
      ~cancelled:(fun () -> true)
      ~scope:"stop"
      (fun () -> incr attempts)
  with
  | Ok _ -> Alcotest.fail "expected Cancelled"
  | Error (Failure.Cancelled, causes) ->
    check_int "no attempt ran" 0 !attempts;
    check_int "no causes" 0 (List.length causes)
  | Error (f, _) -> Alcotest.fail ("wrong verdict: " ^ Failure.to_string f)

let test_run_rng_rollback () =
  (* a retried task must re-read the same random stream, and afterwards
     leave the stream exactly where a single clean attempt would have *)
  let reference = Rng.create 42 in
  let expected = Array.init 3 (fun _ -> Rng.bits64 reference) in
  let rng = Rng.create 42 in
  let attempts = ref 0 in
  (match
     Supervisor.run ~rng ~policy:(fast ()) ~scope:"rollback" (fun () ->
         let draws = Array.init 3 (fun _ -> Rng.bits64 rng) in
         incr attempts;
         if !attempts = 1 then raise Exit;
         draws)
   with
  | Ok draws -> check_bool "retry re-read the same stream" true (draws = expected)
  | Error (f, _) -> Alcotest.fail ("unexpected failure: " ^ Failure.to_string f));
  check_int "two attempts" 2 !attempts;
  check_bool "stream position as after one clean attempt" true
    (Rng.bits64 rng = Rng.bits64 reference)

let test_run_nonretryable_propagates () =
  (* a nested scope that exhausted its own budget must escape the outer
     supervisor immediately instead of being retried *)
  let outer_attempts = ref 0 in
  let escaped =
    try
      ignore
        (Supervisor.run ~policy:(fast ~retries:5 ()) ~scope:"outer" (fun () ->
             incr outer_attempts;
             Supervisor.protect ~policy:(fast ~retries:0 ()) ~scope:"inner" (fun () ->
                 raise Exit)));
      None
    with Failure.Supervision_failed { scope; _ } -> Some scope
  in
  check_bool "inner verdict escapes" true (escaped = Some "inner");
  check_int "outer did not retry it" 1 !outer_attempts

let test_protect_raises () =
  match
    Supervisor.protect ~policy:(fast ~retries:1 ()) ~scope:"S" (fun () -> raise Exit)
  with
  | () -> Alcotest.fail "expected Supervision_failed"
  | exception Failure.Supervision_failed { scope; failure; causes } ->
    check_string "scope" "S" scope;
    check_bool "gave up after both attempts" true (failure = Failure.Gave_up 2);
    check_int "one cause per attempt" 2 (List.length causes)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

let test_chaos_plan_deterministic () =
  let plan ~chaos ~seed scope attempt =
    Chaos.plan ~policy:(Policy.make ~chaos ~chaos_seed:seed ()) ~scope ~attempt
  in
  check_bool "chaos off is Pass" true (plan ~chaos:0.0 ~seed:3 "x" 0 = Chaos.Pass);
  check_bool "pure function of (seed, scope, attempt)" true
    (plan ~chaos:0.7 ~seed:3 "x" 1 = plan ~chaos:0.7 ~seed:3 "x" 1);
  check_bool "seed changes the pattern" true
    (List.init 32 (fun i -> plan ~chaos:0.5 ~seed:3 (string_of_int i) 0)
    <> List.init 32 (fun i -> plan ~chaos:0.5 ~seed:4 (string_of_int i) 0));
  let events = List.init 64 (fun i -> plan ~chaos:1.0 ~seed:3 (Printf.sprintf "s%d" i) 0) in
  check_bool "chaos=1 always injects" true
    (List.for_all (fun e -> e <> Chaos.Pass) events);
  check_bool "both raises and delays occur" true
    (List.exists (fun e -> e = Chaos.Raise_fault) events
    && List.exists (function Chaos.Delay _ -> true | _ -> false) events);
  check_bool "delays within [1ms, 5ms]" true
    (List.for_all
       (function Chaos.Delay d -> d >= 0.001 && d <= 0.005 | _ -> true)
       events)

let test_chaos_rate () =
  let injected =
    List.init 500 (fun i ->
        Chaos.plan
          ~policy:(Policy.make ~chaos:0.3 ~chaos_seed:9 ())
          ~scope:(Printf.sprintf "rate%d" i) ~attempt:0)
    |> List.filter (fun e -> e <> Chaos.Pass)
    |> List.length
  in
  let frac = float_of_int injected /. 500.0 in
  check_bool "injection rate tracks the dial" true (frac > 0.2 && frac < 0.4)

let test_chaos_survivor_identity () =
  (* a supervised task that outlives its injected faults returns exactly
     what the chaos-free run returns — the @chaos-smoke property *)
  let eval policy =
    let rng = Rng.create 9 in
    List.map
      (fun scope ->
        match Supervisor.run ~rng ~policy ~scope (fun () -> Rng.bits64 rng) with
        | Ok v -> v
        | Error (f, _) ->
          Alcotest.fail
            (Printf.sprintf "chaos not survived at %s: %s" scope (Failure.to_string f)))
      [ "C.a"; "C.b"; "C.c"; "C.d"; "C.e"; "C.f" ]
  in
  let plain = eval (fast ()) in
  let chaotic = eval (fast ~retries:16 ~chaos:0.6 ~chaos_seed:11 ()) in
  check_bool "chaos-surviving results identical" true (plain = chaotic)

(* ------------------------------------------------------------------ *)
(* Supervisor.trials                                                   *)
(* ------------------------------------------------------------------ *)

let test_trials_matches_par () =
  let job r = Rng.bits64 r in
  let plain = Fn_parallel.Par.trials ~domains:1 ~rng:(Rng.create 5) 12 job in
  let sup1 =
    Supervisor.trials ~domains:1 ~policy:Policy.default ~scope:"T" ~rng:(Rng.create 5)
      12 job
  in
  let sup4 =
    Supervisor.trials ~domains:4 ~policy:Policy.default ~scope:"T" ~rng:(Rng.create 5)
      12 job
  in
  check_bool "matches unsupervised Par.trials" true (plain = sup1);
  check_bool "independent of domain count" true (sup1 = sup4)

(* Marks first-attempt crashes by the (deterministic) first draw of each
   trial's split stream: the retry sees the restored stream, finds its
   draw already marked, and succeeds. *)
let crash_once_marker () =
  let lock = Mutex.create () in
  let seen : (int64, unit) Hashtbl.t = Hashtbl.create 8 in
  let first_time x =
    Mutex.lock lock;
    let fresh = not (Hashtbl.mem seen x) in
    if fresh then Hashtbl.add seen x ();
    Mutex.unlock lock;
    fresh
  in
  (first_time, fun () -> Hashtbl.length seen)

let test_trials_crash_isolation () =
  let policy = fast () in
  let job r = Int64.to_int (Int64.logand (Rng.bits64 r) 0xFFL) in
  let first_time, crashes = crash_once_marker () in
  let crash_once r =
    let x = Rng.bits64 r in
    if Int64.rem x 3L = 0L && first_time x then raise Exit;
    Int64.to_int (Int64.logand x 0xFFL)
  in
  let clean = Supervisor.trials ~domains:4 ~policy ~scope:"iso" ~rng:(Rng.create 8) 16 job in
  let faulty =
    Supervisor.trials ~domains:4 ~policy ~scope:"iso" ~rng:(Rng.create 8) 16 crash_once
  in
  check_bool "some first attempts crashed" true (crashes () > 0);
  check_bool "crashes retried in isolation, results unchanged" true (clean = faulty)

let test_trials_gave_up_lowest_index () =
  let n = 10 in
  let doomed x = Int64.rem x 4L = 0L in
  (* the split streams are deterministic, so precompute the lowest index
     whose job will always crash *)
  let rngs = Rng.split_n (Rng.create 21) n in
  let first =
    let rec go i =
      if i >= n then Alcotest.fail "seed 21 marks no trial; pick another"
      else if doomed (Rng.bits64 (Rng.copy rngs.(i))) then i
      else go (i + 1)
    in
    go 0
  in
  let job r =
    let x = Rng.bits64 r in
    if doomed x then raise Exit;
    x
  in
  (match
     Supervisor.trials ~domains:4 ~policy:(fast ~retries:1 ()) ~scope:"D"
       ~rng:(Rng.create 21) n job
   with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Failure.Supervision_failed { scope; failure; causes } ->
    check_string "lowest failing trial wins" (Printf.sprintf "D[%d]" first) scope;
    check_bool "gave up after retrying" true (failure = Failure.Gave_up 2);
    check_int "both attempts recorded" 2 (List.length causes));
  (* retries = 0 fails fast out of the parallel phase *)
  match
    Supervisor.trials ~domains:4 ~policy:(fast ~retries:0 ()) ~scope:"D"
      ~rng:(Rng.create 21) n job
  with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Failure.Supervision_failed { failure; causes; _ } ->
    check_bool "fail-fast verdict" true (failure = Failure.Gave_up 1);
    check_int "single cause" 1 (List.length causes)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "fn_resilience" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let journal_exn = function
  | Ok j -> j
  | Error e -> Alcotest.fail ("journal open failed: " ^ e)

let meta7 = [ ("seed", J.Int 7); ("quick", J.Bool true) ]

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_int "fresh journal recovers nothing" 0 (Journal.recovered j);
      check_int "fresh journal has no torn lines" 0 (Journal.torn j);
      Journal.record_trial j ~scope:"T" ~index:0 (J.Int 11);
      Journal.record_trial j ~scope:"T" ~index:3 Journal.(float_codec.encode 0.1);
      Journal.record_outcome j ~id:"E5" (J.Obj [ ("ok", J.Bool true) ]);
      check_bool "find recorded trial" true
        (Journal.find_trial j ~scope:"T" ~index:0 = Some (J.Int 11));
      check_bool "missing trial is None" true
        (Journal.find_trial j ~scope:"T" ~index:1 = None);
      Journal.close j;
      let j2 = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_int "all records recovered" 3 (Journal.recovered j2);
      check_int "no torn lines" 0 (Journal.torn j2);
      check_bool "trial survives reopen" true
        (Journal.find_trial j2 ~scope:"T" ~index:0 = Some (J.Int 11));
      check_bool "float trial exact after reopen" true
        (match Journal.find_trial j2 ~scope:"T" ~index:3 with
        | Some stored -> Journal.(float_codec.decode stored) = Some 0.1
        | None -> false);
      check_bool "outcome survives reopen" true
        (Journal.find_outcome j2 ~id:"E5" = Some (J.Obj [ ("ok", J.Bool true) ]));
      Journal.close j2)

let test_journal_meta_mismatch () =
  with_temp_journal (fun path ->
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      Journal.record_outcome j ~id:"E1" J.Null;
      Journal.close j;
      (match Journal.open_ ~path ~meta:[ ("seed", J.Int 8) ] with
      | Ok _ -> Alcotest.fail "expected meta mismatch"
      | Error e -> check_bool "names the offending key" true (contains ~needle:"seed" e));
      (* extra keys the journal never recorded also refuse to bind *)
      match Journal.open_ ~path ~meta:[ ("mode", J.Str "full") ] with
      | Ok _ -> Alcotest.fail "expected mismatch on absent key"
      | Error e -> check_bool "mentions mismatch" true (contains ~needle:"mismatch" e))

let test_journal_torn_tail () =
  with_temp_journal (fun path ->
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      Journal.record_trial j ~scope:"T" ~index:0 (J.Int 1);
      Journal.record_trial j ~scope:"T" ~index:1 (J.Int 2);
      Journal.close j;
      (* simulate a kill mid-write: a truncated final line *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc {|{"kind":"trial","scope":"T","ind|};
      close_out oc;
      let j2 = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_int "torn tail skipped" 1 (Journal.torn j2);
      check_int "intact records still load" 2 (Journal.recovered j2);
      (* appending continues cleanly past the torn tail *)
      Journal.record_trial j2 ~scope:"T" ~index:2 (J.Int 3);
      Journal.close j2;
      let j3 = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_bool "post-tear record readable" true
        (Journal.find_trial j3 ~scope:"T" ~index:2 = Some (J.Int 3));
      Journal.close j3)

let test_journal_codecs () =
  let open Journal in
  let bits = Int64.bits_of_float in
  let float_rt v =
    match float_codec.decode (float_codec.encode v) with
    | Some w -> Int64.equal (bits w) (bits v)
    | None -> false
  in
  check_bool "int round-trip" true (int_codec.decode (int_codec.encode 42) = Some 42);
  check_bool "string round-trip" true
    (string_codec.decode (string_codec.encode "a\"b") = Some "a\"b");
  check_bool "json identity" true
    (json_codec.decode (J.Obj [ ("x", J.Int 1) ]) = Some (J.Obj [ ("x", J.Int 1) ]));
  List.iter
    (fun v -> check_bool (Printf.sprintf "float %h bit-exact" v) true (float_rt v))
    [ 0.1; -1.5e-300; 1e308; 0.0; -0.0; 3.0; Float.pi ];
  check_bool "float decode accepts plain Float" true
    (float_codec.decode (J.Float 2.5) = Some 2.5);
  check_bool "float decode accepts Int" true (float_codec.decode (J.Int 3) = Some 3.0);
  check_bool "float decode rejects garbage" true
    (float_codec.decode (J.Str "nonsense") = None);
  check_bool "int decode rejects strings" true (int_codec.decode (J.Str "7") = None);
  let ac = array_codec int_codec in
  check_bool "array round-trip" true
    (match ac.decode (ac.encode [| 1; 2; 3 |]) with
    | Some a -> a = [| 1; 2; 3 |]
    | None -> false);
  check_bool "array rejects a bad element" true
    (ac.decode (J.List [ J.Int 1; J.Str "x" ]) = None)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_meta_mismatch_lists_every_key () =
  let stored = J.Obj [ ("kind", J.Str "meta"); ("seed", J.Int 7); ("quick", J.Bool true) ] in
  let requested =
    [ ("seed", J.Int 8); ("quick", J.Bool false); ("mode", J.Str "full") ]
  in
  match Journal.check_meta ~requested stored with
  | Ok () -> Alcotest.fail "expected mismatch"
  | Error e ->
    (* every divergent key appears, with the journal's value AND the
       run's value — the operator sees the whole diff at once *)
    List.iter
      (fun needle ->
        check_bool (Printf.sprintf "refusal mentions %S" needle) true
          (contains ~needle e))
      [ "seed"; "7"; "8"; "quick"; "true"; "false"; "mode"; "nothing"; "\"full\"" ];
    (* agreement on every requested key passes even with extra stored fields *)
    check_bool "matching subset binds" true
      (Journal.check_meta ~requested:[ ("seed", J.Int 7) ] stored = Ok ())

let test_journal_compact () =
  with_temp_journal (fun path ->
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      for i = 0 to 9 do
        Journal.record_trial j ~scope:"T" ~index:i (J.Int (100 + i))
      done;
      Journal.record_trial j ~scope:"U" ~index:0 (J.Int 55);
      Journal.record_outcome j ~id:"E5" (J.Bool true);
      let snap = J.Obj [ ("sum", J.Int 836) ] in
      (match Journal.compact j ~scope:"T" ~upto:8 ~snapshot:snap with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("compact failed: " ^ e));
      check_bool "snapshot visible" true (Journal.find_snapshot j ~scope:"T" = Some (8, snap));
      check_bool "prefix trial dropped" true (Journal.find_trial j ~scope:"T" ~index:3 = None);
      check_bool "suffix trial kept" true
        (Journal.find_trial j ~scope:"T" ~index:8 = Some (J.Int 108));
      check_bool "other scope untouched" true
        (Journal.find_trial j ~scope:"U" ~index:0 = Some (J.Int 55));
      (* appending continues on the compacted file *)
      Journal.record_trial j ~scope:"T" ~index:10 (J.Int 110);
      Journal.close j;
      let j2 = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_int "torn-free after rewrite" 0 (Journal.torn j2);
      check_bool "snapshot survives reopen" true
        (Journal.find_snapshot j2 ~scope:"T" = Some (8, snap));
      check_bool "post-compaction append survives" true
        (Journal.find_trial j2 ~scope:"T" ~index:10 = Some (J.Int 110));
      check_bool "outcome survives" true (Journal.find_outcome j2 ~id:"E5" = Some (J.Bool true));
      (* recovered = snapshot + 3 retained T trials + U trial + outcome *)
      check_int "recovery is O(snapshot + suffix)" 6 (Journal.recovered j2);
      Journal.close j2)

exception Simulated_kill

let test_compact_killed_before_rename () =
  with_temp_journal (fun path ->
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      for i = 0 to 5 do
        Journal.record_trial j ~scope:"T" ~index:i (J.Int i)
      done;
      Journal.close j;
      let before = read_file path in
      let j = journal_exn (Journal.open_ ~path ~meta:meta7) in
      (* SIGKILL between the staged write and the rename, simulated by
         raising from the fault-injection hook at exactly that point *)
      (match
         Journal.compact j
           ~on_tmp_written:(fun () -> raise Simulated_kill)
           ~scope:"T" ~upto:4 ~snapshot:(J.Str "partial")
       with
      | exception Simulated_kill -> ()
      | Ok () -> Alcotest.fail "compact survived the kill"
      | Error e -> Alcotest.fail ("compact errored instead of dying: " ^ e));
      Journal.close j;
      check_bool "staging file left behind" true
        (Sys.file_exists (Journal.compact_tmp_path path));
      check_string "old journal still governs" before (read_file path);
      (* the next open discards the stale staging file and recovers
         everything from the (complete) old journal *)
      let j2 = journal_exn (Journal.open_ ~path ~meta:meta7) in
      check_bool "stale tmp discarded" false (Sys.file_exists (Journal.compact_tmp_path path));
      check_bool "no snapshot installed" true (Journal.find_snapshot j2 ~scope:"T" = None);
      check_int "all trials recovered" 6 (Journal.recovered j2);
      Journal.close j2)

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                      *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  with_temp_journal (fun path ->
      let payload = J.Obj [ ("digest", J.Str "abc"); ("faulty", J.List [ J.Int 3 ]) ] in
      (match Snapshot.write ~path ~meta:meta7 payload with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("snapshot write failed: " ^ e));
      check_bool "no staging residue" false (Sys.file_exists (Snapshot.tmp_path path));
      (match Snapshot.read ~path ~meta:meta7 with
      | Ok v -> check_bool "payload round-trips" true (v = payload)
      | Error e -> Alcotest.fail ("snapshot read failed: " ^ e));
      (* a subset binding reads fine; a divergent one is refused with both sides *)
      (match Snapshot.read ~path ~meta:[ ("seed", J.Int 7) ] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("subset meta refused: " ^ e));
      (match Snapshot.read ~path ~meta:[ ("seed", J.Int 9) ] with
      | Ok _ -> Alcotest.fail "divergent meta accepted"
      | Error e ->
        check_bool "mismatch lists both sides" true
          (contains ~needle:"7" e && contains ~needle:"9" e));
      (* overwrite is atomic: the new payload fully replaces the old *)
      (match Snapshot.write ~path ~meta:meta7 (J.Int 42) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("snapshot rewrite failed: " ^ e));
      match Snapshot.read ~path ~meta:meta7 with
      | Ok v -> check_bool "rewrite replaces payload" true (v = J.Int 42)
      | Error e -> Alcotest.fail ("reread failed: " ^ e))

let test_snapshot_rejects_garbage () =
  with_temp_journal (fun path ->
      let oc = open_out_bin path in
      output_string oc "not json at all\n";
      close_out oc;
      match Snapshot.read ~path ~meta:[] with
      | Ok _ -> Alcotest.fail "garbage accepted"
      | Error _ -> ())

let test_trials_checkpoint_resume () =
  with_temp_journal (fun path ->
      let meta = [ ("seed", J.Int 1) ] in
      let calls = Atomic.make 0 in
      let job r =
        Atomic.incr calls;
        Int64.to_int (Int64.logand (Rng.bits64 r) 0xFFFL)
      in
      let j1 = journal_exn (Journal.open_ ~path ~meta) in
      let first =
        Supervisor.trials ~domains:2
          ~checkpoint:(j1, Journal.int_codec)
          ~policy:Policy.default ~scope:"CK" ~rng:(Rng.create 3) 8 job
      in
      Journal.close j1;
      check_int "every trial ran once" 8 (Atomic.get calls);
      let j2 = journal_exn (Journal.open_ ~path ~meta) in
      check_int "journal holds all trials" 8 (Journal.recovered j2);
      (* a poisoned job proves replay: it must never be invoked *)
      let poisoned = Atomic.make 0 in
      let job2 _ =
        Atomic.incr poisoned;
        -1
      in
      let second =
        Supervisor.trials ~domains:2
          ~checkpoint:(j2, Journal.int_codec)
          ~policy:Policy.default ~scope:"CK" ~rng:(Rng.create 3) 8 job2
      in
      Journal.close j2;
      check_int "no journaled trial re-ran" 0 (Atomic.get poisoned);
      check_bool "resumed results identical" true (first = second))

(* ------------------------------------------------------------------ *)
(* End-to-end: kill-and-resume through the experiments binary          *)
(* ------------------------------------------------------------------ *)

let binary =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "experiments.exe";
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "experiments.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let test_cli_resume_byte_identical () =
  if not (Sys.file_exists binary) then
    Alcotest.skip ()
  else begin
    let tmp suffix = Filename.temp_file "fn_resume" suffix in
    let base = tmp ".json" and p1 = tmp ".json" and p2 = tmp ".json" in
    let errf = tmp ".err" in
    let journal = tmp ".jsonl" in
    Sys.remove journal;
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun f -> if Sys.file_exists f then Sys.remove f)
          [ base; p1; p2; errf; journal ])
      (fun () ->
        let run args out =
          let cmd = Printf.sprintf "%s %s > %s 2> %s" binary args out errf in
          check_int ("exit 0: " ^ args) 0 (Sys.command cmd)
        in
        (* the uninterrupted reference run *)
        run "--quick --json --seed 7 E1 E3" base;
        (* phase 1: the "killed" sweep got through E1 only *)
        run (Printf.sprintf "--quick --json --seed 7 --resume %s E1" journal) p1;
        (* phase 2: resume and finish the sweep *)
        run (Printf.sprintf "--quick --json --seed 7 --resume %s E1 E3" journal) p2;
        check_bool "resume announced on stderr" true
          (contains ~needle:"resuming" (read_file errf));
        check_bool "resumed sweep byte-identical to uninterrupted run" true
          (read_file base = read_file p2);
        (* a different seed must refuse the journal *)
        let cmd =
          Printf.sprintf "%s --quick --json --seed 8 --resume %s E1 > %s 2> %s" binary
            journal p1 errf
        in
        check_bool "seed mismatch rejected" true (Sys.command cmd <> 0);
        check_bool "mismatch explained" true
          (contains ~needle:"mismatch" (read_file errf)))
  end

let () =
  Alcotest.run "resilience"
    [
      ( "policy",
        [
          case "validation" test_policy_validation;
          case "backoff schedule" test_backoff_schedule;
        ] );
      ( "run",
        [
          case "success passthrough" test_run_success_passthrough;
          case "retry then success" test_run_retry_then_success;
          case "gave up with causes" test_run_gave_up_causes;
          case "deadline timeout" test_run_deadline_timeout;
          case "deadline generous" test_run_deadline_generous;
          case "cancelled" test_run_cancelled;
          case "rng rollback" test_run_rng_rollback;
          case "non-retryable propagates" test_run_nonretryable_propagates;
          case "protect raises" test_protect_raises;
        ] );
      ( "chaos",
        [
          case "plan deterministic" test_chaos_plan_deterministic;
          case "injection rate" test_chaos_rate;
          case "survivor identity" test_chaos_survivor_identity;
        ] );
      ( "trials",
        [
          case "matches Par.trials" test_trials_matches_par;
          case "crash isolation" test_trials_crash_isolation;
          case "gave up lowest index" test_trials_gave_up_lowest_index;
          case "checkpoint resume" test_trials_checkpoint_resume;
        ] );
      ( "journal",
        [
          case "roundtrip" test_journal_roundtrip;
          case "meta mismatch" test_journal_meta_mismatch;
          case "meta mismatch lists every key" test_meta_mismatch_lists_every_key;
          case "torn tail" test_journal_torn_tail;
          case "codecs" test_journal_codecs;
          case "compaction" test_journal_compact;
          case "kill during compaction" test_compact_killed_before_rename;
        ] );
      ( "snapshot",
        [
          case "atomic roundtrip" test_snapshot_roundtrip;
          case "rejects garbage" test_snapshot_rejects_garbage;
        ] );
      ( "end-to-end",
        [ case "kill and resume" test_cli_resume_byte_identical ] );
    ]
