open Fn_graph
open Fn_routing
open Testutil

let rng () = Fn_prng.Rng.create 1357
let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4
let path5 = Fn_topology.Basic.path 5

let test_permutation_demand () =
  let d = Demand.permutation (rng ()) mesh4 in
  check_bool "no self pairs" true (Array.for_all (fun (s, t) -> s <> t) d);
  let sources = Array.map fst d |> Array.to_list |> List.sort_uniq Int.compare in
  check_int "each source once" (Array.length d) (List.length sources);
  let alive = Bitset.of_list 16 [ 0; 1; 2 ] in
  let d = Demand.permutation (rng ()) ~alive mesh4 in
  Array.iter
    (fun (s, t) ->
      check_bool "alive endpoints" true (Bitset.mem alive s && Bitset.mem alive t))
    d

let test_random_pairs () =
  let d = Demand.random_pairs (rng ()) mesh4 20 in
  check_int "count" 20 (Array.length d);
  check_bool "no self" true (Array.for_all (fun (s, t) -> s <> t) d)

let test_all_to_one () =
  let d = Demand.all_to_one mesh4 5 in
  check_int "everyone sends" 15 (Array.length d);
  check_bool "sink fixed" true (Array.for_all (fun (_, t) -> t = 5) d)

let test_shortest_routes () =
  let r = Route.shortest path5 [| (0, 4); (1, 3) |] in
  check_int "none unroutable" 0 r.Route.unroutable;
  check_int "dilation" 4 (Route.dilation r);
  check_float "mean length" 3.0 (Route.mean_length r);
  (* middle edges carry both routes *)
  check_int "edge congestion" 2 (Route.edge_congestion r);
  check_int "node congestion" 2 (Route.node_congestion r)

let test_unroutable_counted () =
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let r = Route.shortest ~alive path5 [| (0, 4); (0, 1); (3, 4) |] in
  check_int "cut pair unroutable" 1 r.Route.unroutable;
  check_float_eps 1e-9 "fraction" (2.0 /. 3.0) (Route.routable_fraction r);
  (* dead source *)
  let r = Route.shortest ~alive path5 [| (2, 0) |] in
  check_int "dead source" 1 r.Route.unroutable

let test_stretch () =
  (* cycle: kill one node, route the long way round *)
  let c8 = Fn_topology.Basic.cycle 8 in
  let pairs = [| (0, 2) |] in
  let reference = Route.shortest c8 pairs in
  let alive = Bitset.complement (Bitset.of_list 8 [ 1 ]) in
  let faulty = Route.shortest ~alive c8 pairs in
  check_float "stretch 6/2" 3.0 (Route.stretch ~reference faulty);
  Alcotest.check_raises "mismatch" (Invalid_argument "Route.stretch: pair lists must match")
    (fun () -> ignore (Route.stretch ~reference (Route.shortest c8 [| (0, 1); (1, 2) |])))

let test_sim_single_packet () =
  let r = Route.shortest path5 [| (0, 4) |] in
  let s = Sim.run path5 r in
  check_int "makespan = distance" 4 s.Sim.makespan;
  check_int "delivered" 1 s.Sim.delivered;
  check_int "hops" 4 s.Sim.total_hops

let test_sim_contention () =
  (* two packets over the same directed path: second waits one step *)
  let r = Route.shortest path5 [| (0, 4); (0, 4) |] in
  let s = Sim.run path5 r in
  check_int "delivered" 2 s.Sim.delivered;
  check_int "makespan = d + 1" 5 s.Sim.makespan;
  check_bool "queue saw 2" true (s.Sim.max_queue >= 2)

let test_sim_no_packets () =
  let r = Route.shortest path5 [||] in
  let s = Sim.run path5 r in
  check_int "empty makespan" 0 s.Sim.makespan;
  check_int "none" 0 s.Sim.total

let test_sim_opposite_directions_no_conflict () =
  (* directed links are independent: 0->4 and 4->0 do not contend *)
  let r = Route.shortest path5 [| (0, 4); (4, 0) |] in
  let s = Sim.run path5 r in
  check_int "parallel makespan" 4 s.Sim.makespan

let test_sim_delivers_all_permutation () =
  let d = Demand.permutation (rng ()) mesh4 in
  let r = Route.shortest mesh4 d in
  let s = Sim.run mesh4 r in
  check_int "all delivered" s.Sim.total s.Sim.delivered;
  check_bool "makespan >= dilation" true (s.Sim.makespan >= Route.dilation r);
  check_bool "makespan >= congestion-ish" true
    (s.Sim.makespan >= Route.edge_congestion r / 2)

let prop_sim_bounds =
  prop "makespan between max(c,d)/2 and c*d + d" ~count:30
    (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let rng = Fn_prng.Rng.create 99 in
      let d = Demand.permutation rng g in
      if Array.length d = 0 then true
      else begin
        let r = Route.shortest g d in
        let s = Sim.run g r in
        let c = Route.edge_congestion r and dil = Route.dilation r in
        s.Sim.delivered = s.Sim.total
        && s.Sim.makespan >= dil
        && s.Sim.makespan <= (2 * c * max 1 dil) + dil
      end)

let () =
  Alcotest.run "routing"
    [
      ( "demand",
        [
          case "permutation" test_permutation_demand;
          case "random pairs" test_random_pairs;
          case "all to one" test_all_to_one;
        ] );
      ( "route",
        [
          case "shortest" test_shortest_routes;
          case "unroutable" test_unroutable_counted;
          case "stretch" test_stretch;
        ] );
      ( "sim",
        [
          case "single packet" test_sim_single_packet;
          case "contention" test_sim_contention;
          case "no packets" test_sim_no_packets;
          case "opposite directions" test_sim_opposite_directions_no_conflict;
          case "full permutation" test_sim_delivers_all_permutation;
        ] );
      ("properties", [ prop_sim_bounds ]);
    ]
