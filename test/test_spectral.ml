open Fn_graph
open Fn_expansion
open Testutil

let pi = 4.0 *. atan 1.0

let test_lambda2_cycle () =
  (* normalized Laplacian of C_n has lambda2 = 1 - cos(2 pi / n) *)
  List.iter
    (fun n ->
      let r = Spectral.lambda2 (Fn_topology.Basic.cycle n) in
      let expected = 1.0 -. cos (2.0 *. pi /. float_of_int n) in
      check_float_eps 1e-4
        (Printf.sprintf "lambda2 of C%d" n)
        expected r.Spectral.lambda2)
    [ 6; 10; 16 ]

let test_lambda2_complete () =
  (* K_n: lambda2 = n/(n-1) *)
  let r = Spectral.lambda2 (Fn_topology.Basic.complete 10) in
  check_float_eps 1e-4 "lambda2 of K10" (10.0 /. 9.0) r.Spectral.lambda2

let test_lambda2_disconnected_is_zero () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let r = Spectral.lambda2 g in
  check_float_eps 1e-6 "disconnected lambda2 ~ 0" 0.0 r.Spectral.lambda2

let test_fiedler_separates_barbell () =
  (* the Fiedler vector must place the two cliques on opposite sides *)
  let g = Fn_topology.Basic.barbell 6 in
  let r = Spectral.lambda2 g in
  let f = r.Spectral.fiedler in
  let side v = f.(v) > 0.0 in
  let left_side = side 0 in
  for v = 1 to 5 do
    check_bool "left clique together" true (side v = left_side)
  done;
  for v = 6 to 11 do
    check_bool "right clique opposite" true (side v <> left_side)
  done

let test_cheeger_sandwich () =
  (* for d-regular graphs: lambda2/2 <= phi <= sqrt(2 lambda2) where
     phi = edge expansion / d on near-balanced optima; check the exact
     conductance of small graphs sits inside the sandwich *)
  List.iter
    (fun (name, g, d) ->
      let r = Spectral.lambda2 g in
      let exact = (Exact.edge_expansion g).Cut.value in
      let phi = exact /. float_of_int d in
      check_bool (name ^ ": phi >= lambda2/2") true (phi >= Spectral.cheeger_lower r -. 1e-6);
      check_bool (name ^ ": phi <= sqrt(2 lambda2)") true
        (phi <= Spectral.cheeger_upper r +. 1e-6))
    [
      ("C12", Fn_topology.Basic.cycle 12, 2);
      ("Q3", Fn_topology.Hypercube.graph 3, 3);
      ("K8", Fn_topology.Basic.complete 8, 7);
    ]

let test_alive_mask_restriction () =
  (* a cycle with half the nodes dead behaves like a path *)
  let g = Fn_topology.Basic.cycle 12 in
  let alive = Bitset.of_list 12 [ 0; 1; 2; 3; 4; 5 ] in
  let r = Spectral.lambda2 ~alive g in
  check_bool "positive for connected fragment" true (r.Spectral.lambda2 > 1e-4);
  (* dead nodes have zero fiedler entries *)
  for v = 6 to 11 do
    check_float "dead entry" 0.0 r.Spectral.fiedler.(v)
  done

let test_conductance_conversion () =
  let g = Fn_topology.Basic.cycle 8 in
  check_float "phi to alpha_e lower" 0.1 (Spectral.conductance_to_edge_expansion_lb g 0.1)

let test_isolated_alive_nodes_tolerated () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let r = Spectral.lambda2 g in
  check_bool "finite" true (Float.is_finite r.Spectral.lambda2)

let test_domains_bitwise_identical () =
  (* the parallel matvec splits rows across workers but keeps the
     per-row FP order, so every domain count gives the same bits;
     1024 nodes sits at the parallel threshold, and the expander's
     spectral gap keeps the iteration count small *)
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 99) ~n:1024 ~d:6 in
  let a = Spectral.lambda2 g in
  List.iter
    (fun domains ->
      let b = Spectral.lambda2 ~domains g in
      check_bool
        (Printf.sprintf "lambda2 bits equal, domains=%d" domains)
        true
        (Int64.equal
           (Int64.bits_of_float a.Spectral.lambda2)
           (Int64.bits_of_float b.Spectral.lambda2));
      check_bool
        (Printf.sprintf "fiedler bits equal, domains=%d" domains)
        true
        (Array.for_all2
           (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
           a.Spectral.fiedler b.Spectral.fiedler))
    [ 1; 2; 3; 4 ]

let () =
  Alcotest.run "spectral"
    [
      ( "eigenvalues",
        [
          case "cycle lambda2" test_lambda2_cycle;
          case "complete lambda2" test_lambda2_complete;
          case "disconnected" test_lambda2_disconnected_is_zero;
        ] );
      ( "structure",
        [
          case "fiedler separates barbell" test_fiedler_separates_barbell;
          case "cheeger sandwich" test_cheeger_sandwich;
          case "alive mask" test_alive_mask_restriction;
          case "domains bitwise identical" test_domains_bitwise_identical;
          case "conductance conversion" test_conductance_conversion;
          case "isolated nodes" test_isolated_alive_nodes_tolerated;
        ] );
    ]
