(* The spectral backend registry: differential agreement of the Krylov
   methods against the bit-exact Power reference, seeded determinism
   and bit-stability across domains, auto-selection policy, and the
   method-aware entry points (Gview path, warm starts, metrics). *)

open Fn_expansion
open Testutil

let krylov_methods = [ Spectral.Method.Lanczos; Spectral.Method.Shift_invert ]

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Power needs headroom beyond its default 1000 iterations on the
   slow-mixing families (C64's eigenvalue ratio is ~0.993); the Krylov
   methods converge orders of magnitude sooner. *)
let power_ref ?alive g = Spectral.lambda2 ?alive ~method_:Spectral.Method.Power ~max_iter:20_000 g

let families () =
  [
    ("cycle64", Fn_topology.Basic.cycle 64);
    ("mesh16x16", fst (Fn_topology.Mesh.graph [| 16; 16 |]));
    ("torus16x16", fst (Fn_topology.Torus.graph [| 16; 16 |]));
    ("hypercube6", Fn_topology.Hypercube.graph 6);
    ("expander512", Fn_topology.Expander.random_regular (Fn_prng.Rng.create 7) ~n:512 ~d:6);
    ("barbell8", Fn_topology.Basic.barbell 8);
  ]

let test_differential_families () =
  List.iter
    (fun (name, g) ->
      let reference = power_ref g in
      List.iter
        (fun m ->
          let r = Spectral.lambda2 ~method_:m ~max_iter:20_000 g in
          check_float_eps 1e-6
            (Printf.sprintf "%s: %s lambda2 agrees with power" name
               (Spectral.Method.to_string m))
            reference.Spectral.lambda2 r.Spectral.lambda2)
        krylov_methods)
    (families ())

let post_prune_case () =
  (* the adversarial shape from the paper's pipeline: iid node faults
     on a mesh cube, then Prune's survivor mask *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:16 in
  let faults = Fn_faults.Random_faults.nodes_iid (Fn_prng.Rng.create 3) g 0.15 in
  let res =
    Faultnet.Prune.run ~rng:(Fn_prng.Rng.create 5) g
      ~alive:faults.Fn_faults.Fault_set.alive ~alpha:0.17 ~epsilon:0.5
  in
  (g, res.Faultnet.Prune.kept)

let test_differential_post_prune () =
  let g, kept = post_prune_case () in
  let reference = power_ref ~alive:kept g in
  List.iter
    (fun m ->
      let r = Spectral.lambda2 ~alive:kept ~method_:m ~max_iter:20_000 g in
      check_float_eps 1e-6
        (Printf.sprintf "post-prune: %s agrees with power" (Spectral.Method.to_string m))
        reference.Spectral.lambda2 r.Spectral.lambda2)
    krylov_methods

let test_deterministic_reruns () =
  (* no Fn_prng state is drawn anywhere: the same call twice must give
     the same bits, for every backend *)
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 11) ~n:400 ~d:6 in
  List.iter
    (fun m ->
      let a = Spectral.lambda2 ~method_:m g in
      let b = Spectral.lambda2 ~method_:m g in
      check_bool
        (Printf.sprintf "%s lambda2 bitwise deterministic" (Spectral.Method.to_string m))
        true
        (bits_equal a.Spectral.lambda2 b.Spectral.lambda2);
      check_bool
        (Printf.sprintf "%s fiedler bitwise deterministic" (Spectral.Method.to_string m))
        true
        (Array.for_all2 bits_equal a.Spectral.fiedler b.Spectral.fiedler))
    (Spectral.Method.Power :: krylov_methods)

let test_domains_bitwise_identical_per_method () =
  (* the chunked matvec contract extends to every backend: 1024 nodes
     clears the parallel threshold, and each matrix row's FP order is
     domain-count-independent *)
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 99) ~n:1024 ~d:6 in
  List.iter
    (fun m ->
      let a = Spectral.lambda2 ~method_:m g in
      List.iter
        (fun domains ->
          let b = Spectral.lambda2 ~method_:m ~domains g in
          check_bool
            (Printf.sprintf "%s lambda2 bits equal, domains=%d"
               (Spectral.Method.to_string m) domains)
            true
            (bits_equal a.Spectral.lambda2 b.Spectral.lambda2);
          check_bool
            (Printf.sprintf "%s fiedler bits equal, domains=%d"
               (Spectral.Method.to_string m) domains)
            true
            (Array.for_all2 bits_equal a.Spectral.fiedler b.Spectral.fiedler))
        [ 2; 3; 4 ])
    (Spectral.Method.Power :: krylov_methods)

let test_auto_selection () =
  let open Spectral.Method in
  check_bool "small resolves to power" true (select ~n_alive:100 Auto = Power);
  check_bool "below threshold stays power" true
    (select ~n_alive:(power_max_nodes - 1) Auto = Power);
  check_bool "large resolves to lanczos" true (select ~n_alive:200_000 Auto = Lanczos);
  check_bool "collapsed gap hint resolves to shift-invert" true
    (select ~n_alive:200_000 ~gap_hint:1e-8 Auto = Shift_invert);
  check_bool "healthy gap hint stays lanczos" true
    (select ~n_alive:200_000 ~gap_hint:0.1 Auto = Lanczos);
  check_bool "gap hint ignored at small n" true
    (select ~n_alive:100 ~gap_hint:1e-8 Auto = Power);
  List.iter
    (fun m ->
      check_bool
        (Printf.sprintf "explicit %s passes through" (to_string m))
        true
        (select ~n_alive:1_000_000 m = m))
    [ Power; Lanczos; Shift_invert ]

let test_method_names_roundtrip () =
  List.iter
    (fun m ->
      match Spectral.Method.of_string (Spectral.Method.to_string m) with
      | Some m' -> check_bool (Spectral.Method.to_string m ^ " roundtrips") true (m = m')
      | None -> Alcotest.failf "of_string failed for %s" (Spectral.Method.to_string m))
    Spectral.Method.all;
  check_bool "unknown rejected" true (Spectral.Method.of_string "qr" = None)

let test_implicit_view_spectral_path () =
  (* the tentpole's Gview capability: an implicit torus gets the same
     lambda2 as its materialized CSR, for the reference and for the
     Krylov methods *)
  let implicit = Fn_topology.Implicit.torus [| 12; 12 |] in
  let csr, _ = Fn_topology.Torus.graph [| 12; 12 |] in
  let reference = power_ref csr in
  List.iter
    (fun m ->
      let r = Spectral.lambda2_v ~method_:m ~max_iter:20_000 implicit in
      check_float_eps 1e-6
        (Printf.sprintf "implicit torus %s agrees" (Spectral.Method.to_string m))
        reference.Spectral.lambda2 r.Spectral.lambda2)
    (Spectral.Method.Power :: krylov_methods)

let test_warm_starts_method_aware () =
  (* a cached Fiedler pair must seed every backend and land on the
     same lambda2 as the cold solve *)
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 31) ~n:600 ~d:6 in
  let cold, f2 = Spectral.solve g in
  let warm = (cold.Spectral.fiedler, f2) in
  List.iter
    (fun m ->
      let r, _ = Spectral.solve ~warm ~method_:m g in
      check_float_eps 1e-6
        (Printf.sprintf "warm %s matches cold lambda2" (Spectral.Method.to_string m))
        cold.Spectral.lambda2 r.Spectral.lambda2;
      check_bool
        (Printf.sprintf "warm %s converges faster than cold" (Spectral.Method.to_string m))
        true
        (r.Spectral.iterations <= cold.Spectral.iterations))
    (Spectral.Method.Power :: krylov_methods)

let test_solve_histogram_observes_total () =
  (* regression for the satellite bugfix: the spectral.iterations
     histogram used to observe only the first vector's count while the
     span reported it1 + it2 — the observed value must now exceed
     result.iterations (which stays it1 for Power) *)
  let g = Fn_topology.Basic.cycle 32 in
  let h =
    Fn_obs.Metrics.histogram
      ~buckets:[| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
      "spectral.iterations"
  in
  let sum_before = Fn_obs.Metrics.histogram_sum h in
  let count_before = Fn_obs.Metrics.histogram_count h in
  let sink, events = Fn_obs.Sink.memory () in
  let r, _ = Spectral.solve ~obs:sink g in
  let observed = Fn_obs.Metrics.histogram_sum h -. sum_before in
  check_int "one observation" 1 (Fn_obs.Metrics.histogram_count h - count_before);
  check_bool "histogram observes more than the first vector's count" true
    (observed > float_of_int r.Spectral.iterations);
  (* and it agrees with what the span reports *)
  let span_total =
    List.find_map
      (fun e ->
        if e.Fn_obs.Sink.kind = Fn_obs.Sink.Exit && e.Fn_obs.Sink.name = "spectral.solve"
        then
          List.find_map
            (fun (k, v) ->
              match v with Fn_obs.Sink.Int i when k = "iterations" -> Some i | _ -> None)
            e.Fn_obs.Sink.fields
        else None)
      (events ())
  in
  match span_total with
  | Some total -> check_float_eps 1e-9 "histogram total = span total" (float_of_int total) observed
  | None -> Alcotest.fail "no spectral.solve exit span recorded"

let test_spectral_cut_domains_matches_default () =
  (* satellite regression: Sweep.spectral_cut now threads ?domains and
     ?method_ — domains:1 must equal the default byte for byte, and
     domains:2 must too (matvec and sweeps are bit-stable across
     domains) *)
  let g = fst (Fn_topology.Mesh.graph [| 16; 16 |]) in
  let base = Sweep.spectral_cut g Cut.Edge in
  List.iter
    (fun (name, c) ->
      check_bool (name ^ " same set") true (Fn_graph.Bitset.equal c.Cut.set base.Cut.set);
      check_bool (name ^ " same value bits") true (bits_equal c.Cut.value base.Cut.value))
    [
      ("domains 1", Sweep.spectral_cut ~domains:1 g Cut.Edge);
      ("domains 2", Sweep.spectral_cut ~domains:2 g Cut.Edge);
      ("explicit power", Sweep.spectral_cut ~method_:Spectral.Method.Power g Cut.Edge);
    ]

let test_warm_gate_rejects_single_vector_drift () =
  (* satellite regression: the Warm reuse gate must check BOTH cached
     vectors' residuals.  Find a mask drift where x1 stays healthy but
     x2 degrades, place the tolerance between the two residuals, and
     check the engine falls back cold — the old first-vector-only gate
     would have reused the stale pair. *)
  let module Warm = Fn_online.Warm in
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 21) ~n:400 ~d:6 in
  let n = Fn_graph.Graph.num_nodes g in
  let full = Fn_graph.Bitset.create_full n in
  let seed = 77 in
  (* replicate the pair Warm caches on its first compute (same seed
     derivation as Warm.warm_compute) *)
  let est =
    Estimate.run ~alive:full ~rng:(Fn_prng.Rng.create (seed lxor 0x0A11CE)) g Cut.Node
  in
  let x1, x2 =
    match est.Estimate.fiedler_pair with
    | Some p -> p
    | None -> Alcotest.fail "no fiedler pair on the heuristic arm"
  in
  (* scan single-node removals for the widest r2-over-r1 separation *)
  let best = ref None in
  for v = 0 to n - 1 do
    let kept = Fn_graph.Bitset.copy full in
    Fn_graph.Bitset.remove kept v;
    let r1 = Spectral.residual ~alive:kept g x1 in
    let r2 = Spectral.residual ~alive:kept g x2 in
    if r2 > r1 then begin
      match !best with
      | Some (_, br1, br2) when br2 -. br1 >= r2 -. r1 -> ()
      | _ -> best := Some (kept, r1, r2)
    end
  done;
  match !best with
  | None -> Alcotest.fail "no drift candidate found"
  | Some (kept, r1, r2) ->
    let tol = 0.5 *. (r1 +. r2) in
    check_bool "x1 under the gate, x2 over it" true (r1 <= tol && r2 > tol);
    let view = Fn_graph.Gview.Csr g in
    let t = Warm.create ~mode:Warm.Warm ~residual_tol:tol seed in
    ignore (Warm.query t view ~kept:full);
    ignore (Warm.query t view ~kept);
    check_int "cold fall on x2 drift" 1 (Warm.cold_falls t);
    check_int "no warm hit on x2 drift" 0 (Warm.warm_hits t);
    (* with the tolerance above both residuals the same drift reuses
       the pair — the gate reads the vectors, not the mask *)
    let t2 = Warm.create ~mode:Warm.Warm ~residual_tol:(r2 +. 1.0) seed in
    ignore (Warm.query t2 view ~kept:full);
    ignore (Warm.query t2 view ~kept);
    check_int "warm hit when both pass" 1 (Warm.warm_hits t2);
    check_int "no cold fall when both pass" 0 (Warm.cold_falls t2)

let () =
  Alcotest.run "spectral_methods"
    [
      ( "differential",
        [
          case "generator families" test_differential_families;
          case "post-prune mask" test_differential_post_prune;
          case "implicit view path" test_implicit_view_spectral_path;
        ] );
      ( "determinism",
        [
          case "bitwise reruns" test_deterministic_reruns;
          case "domains bit-stability" test_domains_bitwise_identical_per_method;
          case "spectral_cut domains matches default" test_spectral_cut_domains_matches_default;
        ] );
      ( "registry",
        [
          case "auto selection" test_auto_selection;
          case "method names roundtrip" test_method_names_roundtrip;
          case "warm starts method-aware" test_warm_starts_method_aware;
          case "warm gate rejects single-vector drift" test_warm_gate_rejects_single_vector_drift;
          case "histogram observes total iterations" test_solve_histogram_observes_total;
        ] );
    ]
