open Fn_graph
open Testutil

let rng () = Fn_prng.Rng.create 777

(* ---- mesh ---- *)

let test_mesh_counts () =
  let g, geo = Fn_topology.Mesh.graph [| 3; 4 |] in
  check_int "nodes" 12 (Graph.num_nodes g);
  (* edges: 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 *)
  check_int "edges" 17 (Graph.num_edges g);
  check_int "size" 12 geo.Fn_topology.Mesh.size;
  Check.csr_exn g

let test_mesh_encode_decode () =
  let geo = Fn_topology.Mesh.geometry [| 3; 4; 5 |] in
  for id = 0 to geo.Fn_topology.Mesh.size - 1 do
    let c = Fn_topology.Mesh.decode geo id in
    if Fn_topology.Mesh.encode geo c <> id then Alcotest.failf "roundtrip failed at %d" id
  done;
  Alcotest.check_raises "bad coord" (Invalid_argument "Mesh.encode: coordinate out of range")
    (fun () -> ignore (Fn_topology.Mesh.encode geo [| 0; 0; 5 |]))

let test_mesh_adjacency_is_unit_step () =
  let g, geo = Fn_topology.Mesh.cube ~d:3 ~side:3 in
  Graph.iter_edges g (fun u v ->
      let cu = Fn_topology.Mesh.decode geo u and cv = Fn_topology.Mesh.decode geo v in
      let diff = ref 0 in
      Array.iteri (fun i c -> diff := !diff + abs (c - cv.(i))) cu;
      if !diff <> 1 then Alcotest.failf "edge %d-%d is not a unit step" u v)

let test_mesh_degenerate () =
  let g, _ = Fn_topology.Mesh.graph [| 1 |] in
  check_int "single node" 1 (Graph.num_nodes g);
  check_int "no edges" 0 (Graph.num_edges g);
  let g, _ = Fn_topology.Mesh.graph [| 1; 5 |] in
  check_int "degenerate dim ok" 5 (Graph.num_nodes g);
  check_int "line edges" 4 (Graph.num_edges g)

let test_virtual_neighbors () =
  let geo = Fn_topology.Mesh.geometry [| 4; 4 |] in
  (* interior node: 4 axis + 4 diagonal = 8 king moves *)
  let v = Fn_topology.Mesh.encode geo [| 1; 1 |] in
  check_int "interior king moves" 8 (List.length (Fn_topology.Mesh.virtual_neighbors geo v));
  (* corner: 2 axis + 1 diagonal *)
  let c = Fn_topology.Mesh.encode geo [| 0; 0 |] in
  check_int "corner king moves" 3 (List.length (Fn_topology.Mesh.virtual_neighbors geo c));
  (* symmetry of the predicate *)
  List.iter
    (fun w ->
      check_bool "virtual edge symmetric" true (Fn_topology.Mesh.is_virtual_edge geo w v))
    (Fn_topology.Mesh.virtual_neighbors geo v);
  check_bool "not self" false (Fn_topology.Mesh.is_virtual_edge geo v v)

let test_central_hyperplane () =
  let geo = Fn_topology.Mesh.geometry [| 4; 6 |] in
  let plane = Fn_topology.Mesh.central_hyperplane geo in
  (* widest dimension is 1 (length 6): plane is a column of 4 nodes *)
  check_int "size" 4 (Array.length plane);
  Array.iter
    (fun v -> check_int "coordinate" 3 (Fn_topology.Mesh.decode geo v).(1))
    plane;
  (* removing the plane bisects the mesh *)
  let g, _ = Fn_topology.Mesh.graph [| 4; 6 |] in
  let alive = Bitset.complement (Bitset.of_array 24 plane) in
  let comps = Components.compute ~alive g in
  check_int "two halves" 2 comps.Components.count;
  Alcotest.check_raises "bad dim" (Invalid_argument "Mesh.central_hyperplane: bad dimension")
    (fun () -> ignore (Fn_topology.Mesh.central_hyperplane ~dim:2 geo))

(* ---- torus ---- *)

let test_torus_regular () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:5 in
  check_bool "4-regular" true (Check.regular g 4);
  check_int "edges" (2 * 25) (Graph.num_edges g);
  Check.csr_exn g

let test_torus_small_sides () =
  let g, _ = Fn_topology.Torus.graph [| 2; 3 |] in
  (* side 2 merges the wrap edge with the mesh edge *)
  check_int "nodes" 6 (Graph.num_nodes g);
  Check.csr_exn g;
  let g1, _ = Fn_topology.Torus.graph [| 1 |] in
  check_int "single" 1 (Graph.num_nodes g1)

(* ---- hypercube ---- *)

let test_hypercube () =
  let g = Fn_topology.Hypercube.graph 4 in
  check_int "nodes" 16 (Graph.num_nodes g);
  check_bool "4-regular" true (Check.regular g 4);
  check_bool "dimension recovered" true (Fn_topology.Hypercube.dimension g = Some 4);
  check_bool "connected" true (Components.is_connected g);
  check_bool "non power of two" true
    (Fn_topology.Hypercube.dimension (Fn_topology.Basic.path 6) = None);
  let g0 = Fn_topology.Hypercube.graph 0 in
  check_int "dim 0" 1 (Graph.num_nodes g0)

(* ---- butterfly / de Bruijn / shuffle-exchange ---- *)

let test_butterfly () =
  let g = Fn_topology.Butterfly.unwrapped 3 in
  check_int "nodes" 32 (Graph.num_nodes g);
  check_int "edges" (2 * 3 * 8) (Graph.num_edges g);
  check_bool "connected" true (Components.is_connected g);
  check_int "max degree" 4 (Graph.max_degree g);
  let w = Fn_topology.Butterfly.wrapped 3 in
  check_int "wrapped nodes" 24 (Graph.num_nodes w);
  check_bool "wrapped 4-regular" true (Check.regular w 4);
  let level, row =
    Fn_topology.Butterfly.level_and_row ~k:3 (Fn_topology.Butterfly.node ~k:3 ~level:2 ~row:5)
  in
  check_int "level" 2 level;
  check_int "row" 5 row

let test_debruijn () =
  let g = Fn_topology.Debruijn.graph 5 in
  check_int "nodes" 32 (Graph.num_nodes g);
  check_bool "connected" true (Components.is_connected g);
  check_bool "degree <= 4" true (Graph.max_degree g <= 4)

let test_shuffle_exchange () =
  let g = Fn_topology.Shuffle_exchange.graph 5 in
  check_int "nodes" 32 (Graph.num_nodes g);
  check_bool "connected" true (Components.is_connected g);
  check_bool "degree <= 3" true (Graph.max_degree g <= 3)

(* ---- basic families ---- *)

let test_basic_families () =
  check_int "K5 edges" 10 (Graph.num_edges (Fn_topology.Basic.complete 5));
  check_int "C7 edges" 7 (Graph.num_edges (Fn_topology.Basic.cycle 7));
  check_int "P7 edges" 6 (Graph.num_edges (Fn_topology.Basic.path 7));
  check_int "star edges" 6 (Graph.num_edges (Fn_topology.Basic.star 7));
  check_int "star hub degree" 6 (Graph.degree (Fn_topology.Basic.star 7) 0);
  check_int "K23 edges" 6 (Graph.num_edges (Fn_topology.Basic.complete_bipartite 2 3));
  let bb = Fn_topology.Basic.barbell 4 in
  check_int "barbell nodes" 8 (Graph.num_nodes bb);
  check_int "barbell edges" 13 (Graph.num_edges bb);
  check_bool "barbell connected" true (Components.is_connected bb);
  let bt = Fn_topology.Basic.binary_tree 7 in
  check_int "tree edges" 6 (Graph.num_edges bt);
  check_int "root degree" 2 (Graph.degree bt 0)

(* ---- random graphs ---- *)

let test_gnp_extremes () =
  let r = rng () in
  check_int "p=0" 0 (Graph.num_edges (Fn_topology.Random_graphs.gnp r 20 0.0));
  check_int "p=1" 190 (Graph.num_edges (Fn_topology.Random_graphs.gnp r 20 1.0))

let test_gnp_density () =
  let r = rng () in
  let g = Fn_topology.Random_graphs.gnp r 200 0.1 in
  let expected = 0.1 *. float_of_int (200 * 199 / 2) in
  let m = float_of_int (Graph.num_edges g) in
  check_bool "edge count near expectation" true
    (abs_float (m -. expected) < 5.0 *. sqrt expected);
  Check.csr_exn g

let test_gnm () =
  let r = rng () in
  let g = Fn_topology.Random_graphs.gnm r 50 100 in
  check_int "exact edges" 100 (Graph.num_edges g);
  Check.csr_exn g;
  Alcotest.check_raises "too many" (Invalid_argument "Random_graphs.gnm: m out of range")
    (fun () -> ignore (Fn_topology.Random_graphs.gnm r 4 7))

let test_random_regular () =
  let r = rng () in
  List.iter
    (fun (n, d) ->
      let g = Fn_topology.Random_graphs.random_regular r n d in
      check_bool (Printf.sprintf "%d-regular on %d" d n) true (Check.regular g d);
      Check.csr_exn g)
    [ (10, 3); (64, 4); (128, 6); (50, 8) ];
  Alcotest.check_raises "odd product"
    (Invalid_argument "Random_graphs.random_regular: n*d must be even") (fun () ->
      ignore (Fn_topology.Random_graphs.random_regular r 5 3))

let test_connected_random_regular () =
  let r = rng () in
  let g = Fn_topology.Random_graphs.connected_random_regular r 100 3 in
  check_bool "connected" true (Components.is_connected g);
  check_bool "3-regular" true (Check.regular g 3)

(* ---- expanders ---- *)

let test_margulis () =
  let g = Fn_topology.Expander.margulis 8 in
  check_int "nodes" 64 (Graph.num_nodes g);
  check_bool "degree <= 8" true (Graph.max_degree g <= 8);
  check_bool "connected" true (Components.is_connected g);
  Check.csr_exn g

(* ---- chain graph ---- *)

let test_chain_graph_structure () =
  let base = Fn_topology.Basic.cycle 4 in
  let cg = Fn_topology.Chain_graph.build base ~k:4 in
  let h = cg.Fn_topology.Chain_graph.graph in
  (* 4 original + 4 edges * 4 chain nodes *)
  check_int "nodes" 20 (Graph.num_nodes h);
  (* each chain contributes k+1 = 5 edges *)
  check_int "edges" 20 (Graph.num_edges h);
  check_bool "connected" true (Components.is_connected h);
  check_int "originals" 4 (Bitset.cardinal (Fn_topology.Chain_graph.original_nodes cg));
  let centers = Fn_topology.Chain_graph.chain_centers cg in
  check_int "one center per edge" 4 (Array.length centers);
  check_int "distinct centers" 4
    (List.length (List.sort_uniq Int.compare (Array.to_list centers)));
  Array.iter (fun c -> check_int "center degree" 2 (Graph.degree h c)) centers;
  let chain = Fn_topology.Chain_graph.chain_of_edge cg 0 in
  check_int "chain length" 4 (Array.length chain);
  for i = 0 to 2 do
    check_bool "chain consecutive" true (Graph.has_edge h chain.(i) chain.(i + 1))
  done;
  check_float "prediction" 0.5 (Fn_topology.Chain_graph.expansion_prediction cg)

let test_chain_graph_rejects_odd_k () =
  Alcotest.check_raises "odd k" (Invalid_argument "Chain_graph.build: k must be even and >= 2")
    (fun () -> ignore (Fn_topology.Chain_graph.build (Fn_topology.Basic.cycle 3) ~k:3))

let test_claim24_witness () =
  (* the proof object of Claim 2.4: for any base set U the witness U'
     has node expansion at most 2/k (up to the +|U| slack in |U'|) *)
  let r = rng () in
  let base = Fn_topology.Random_graphs.connected_random_regular r 16 4 in
  let cg = Fn_topology.Chain_graph.build base ~k:8 in
  let h = cg.Fn_topology.Chain_graph.graph in
  List.iter
    (fun base_list ->
      let base_set = Bitset.of_list 16 base_list in
      let w = Fn_topology.Chain_graph.claim24_witness cg ~base_set in
      let expansion = Boundary.node_expansion h w in
      let bound = Fn_topology.Chain_graph.expansion_prediction cg in
      if expansion > bound +. 1e-9 then
        Alcotest.failf "witness expansion %.4f above 2/k = %.4f" expansion bound;
      (* the boundary is exactly one chain node per leaving base edge *)
      let leaving =
        Graph.fold_edges
          (fun u v acc ->
            let inu = List.mem u base_list and inv = List.mem v base_list in
            if inu <> inv then acc + 1 else acc)
          base 0
      in
      check_int "boundary = leaving base edges" leaving (Boundary.node_boundary_size h w))
    [ [ 0 ]; [ 0; 1; 2 ]; List.init 8 Fun.id ]

let test_chain_attack_shatters () =
  let base = Fn_topology.Basic.complete 5 in
  let cg = Fn_topology.Chain_graph.build base ~k:2 in
  let h = cg.Fn_topology.Chain_graph.graph in
  let centers = Fn_topology.Chain_graph.chain_centers cg in
  let faulty = Bitset.of_array (Graph.num_nodes h) centers in
  let alive = Bitset.complement faulty in
  let comps = Components.compute ~alive h in
  (* every surviving component is a base node with half-chains:
     size <= delta*k/2 + 1 = 5 *)
  check_bool "all components small" true
    (Array.for_all (fun s -> s <= 5) comps.Components.sizes)

let () =
  Alcotest.run "topology"
    [
      ( "mesh",
        [
          case "counts" test_mesh_counts;
          case "encode/decode" test_mesh_encode_decode;
          case "unit-step adjacency" test_mesh_adjacency_is_unit_step;
          case "degenerate dims" test_mesh_degenerate;
          case "virtual neighbors" test_virtual_neighbors;
          case "central hyperplane" test_central_hyperplane;
        ] );
      ( "torus",
        [ case "regular" test_torus_regular; case "small sides" test_torus_small_sides ] );
      ("hypercube", [ case "structure" test_hypercube ]);
      ( "indirect",
        [
          case "butterfly" test_butterfly;
          case "debruijn" test_debruijn;
          case "shuffle-exchange" test_shuffle_exchange;
        ] );
      ("basic", [ case "families" test_basic_families ]);
      ( "random",
        [
          case "gnp extremes" test_gnp_extremes;
          case "gnp density" test_gnp_density;
          case "gnm" test_gnm;
          case "random regular" test_random_regular;
          case "connected regular" test_connected_random_regular;
        ] );
      ("expander", [ case "margulis" test_margulis ]);
      ( "chain graph",
        [
          case "structure" test_chain_graph_structure;
          case "odd k rejected" test_chain_graph_rejects_odd_k;
          case "claim 2.4 witness" test_claim24_witness;
          case "center attack shatters" test_chain_attack_shatters;
        ] );
    ]
