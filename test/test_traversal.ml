open Fn_graph
open Testutil

let path5 = Fn_topology.Basic.path 5
let cycle6 = Fn_topology.Basic.cycle 6
let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4

let test_bfs_path () =
  let d = Bfs.distances path5 0 in
  check_bool "path distances" true (d = [| 0; 1; 2; 3; 4 |]);
  let d = Bfs.distances path5 2 in
  check_bool "from middle" true (d = [| 2; 1; 0; 1; 2 |])

let test_bfs_cycle () =
  let d = Bfs.distances cycle6 0 in
  check_bool "cycle distances" true (d = [| 0; 1; 2; 3; 2; 1 |])

let test_bfs_masked () =
  (* killing node 2 of the path cuts 3,4 off *)
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let d = Bfs.distances ~alive path5 0 in
  check_bool "masked distances" true (d = [| 0; 1; -1; -1; -1 |])

let test_bfs_source_checks () =
  Alcotest.check_raises "bad source" (Invalid_argument "Bfs: source out of range") (fun () ->
      ignore (Bfs.distances path5 9));
  let alive = Bitset.of_list 5 [ 1 ] in
  Alcotest.check_raises "dead source" (Invalid_argument "Bfs: source not alive") (fun () ->
      ignore (Bfs.distances ~alive path5 0))

let test_multi_source () =
  let d = Bfs.multi_source_distances path5 [| 0; 4 |] in
  check_bool "two sources" true (d = [| 0; 1; 2; 1; 0 |])

let test_reachable () =
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let r = Bfs.reachable ~alive path5 3 in
  check_bool "reachable half" true (Bitset.to_list r = [ 3; 4 ])

let test_tree_and_path_to () =
  let parents = Bfs.tree mesh4 0 in
  check_int "root parent" 0 parents.(0);
  let p = Bfs.path_to ~parents 15 in
  check_int "path length = dist + 1" 7 (List.length p);
  check_bool "starts at root" true (List.hd p = 0);
  (* consecutive hops are edges *)
  let rec edges_ok = function
    | a :: (b :: _ as rest) -> Graph.has_edge mesh4 a b && edges_ok rest
    | _ -> true
  in
  check_bool "path follows edges" true (edges_ok p);
  Alcotest.check_raises "unreachable" Not_found (fun () ->
      let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
      ignore (Bfs.path_to ~parents:(Bfs.tree ~alive path5 0) 4))

let test_ball () =
  let b = Bfs.ball mesh4 5 1 in
  check_int "radius-1 ball in mesh" 5 (Bitset.cardinal b);
  let b0 = Bfs.ball mesh4 5 0 in
  check_bool "radius 0" true (Bitset.to_list b0 = [ 5 ]);
  let ball_all = Bfs.ball mesh4 5 10 in
  check_int "big radius covers all" 16 (Bitset.cardinal ball_all)

let test_ball_of_size () =
  let b = Bfs.ball_of_size mesh4 0 7 in
  check_int "exact size when available" 7 (Bitset.cardinal b);
  check_bool "connected" true (Dfs.is_connected_subset mesh4 b);
  let alive = Bitset.of_list 5 [ 0; 1 ] in
  let b = Bfs.ball_of_size ~alive path5 0 10 in
  check_int "bounded by component" 2 (Bitset.cardinal b)

let test_eccentricity () =
  check_int "path end" 4 (Bfs.eccentricity path5 0);
  check_int "path middle" 2 (Bfs.eccentricity path5 2);
  check_int "cycle" 3 (Bfs.eccentricity cycle6 1)

let test_dfs_preorder () =
  let order = Dfs.preorder path5 0 in
  check_bool "path preorder" true (order = [| 0; 1; 2; 3; 4 |]);
  let order = Dfs.preorder mesh4 0 in
  check_int "covers component" 16 (Array.length order);
  check_int "starts at source" 0 order.(0)

let test_dfs_connected_subset () =
  check_bool "empty is connected" true (Dfs.is_connected_subset path5 (Bitset.create 5));
  check_bool "segment connected" true
    (Dfs.is_connected_subset path5 (Bitset.of_list 5 [ 1; 2; 3 ]));
  check_bool "gap disconnected" false
    (Dfs.is_connected_subset path5 (Bitset.of_list 5 [ 0; 2 ]))

let test_dfs_forest () =
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let f = Dfs.forest ~alive path5 in
  check_int "dead node" (-1) f.(2);
  check_int "root 0" 0 f.(0);
  check_int "root 3" 3 f.(3);
  check_int "child of 3" 3 f.(4)

let prop_bfs_distances_triangle_inequality =
  prop "BFS distance drops by exactly 1 along tree edges" ~count:100
    (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let d = Bfs.distances g 0 in
      let parents = Bfs.tree g 0 in
      let ok = ref true in
      for v = 0 to Graph.num_nodes g - 1 do
        if v <> 0 then begin
          if d.(v) <> d.(parents.(v)) + 1 then ok := false
        end
      done;
      !ok)

let prop_reachable_equals_dfs =
  prop "BFS and DFS reachability agree" (Testutil.gen_any_graph ~max_n:12 ()) (fun g ->
      Bitset.equal (Bfs.reachable g 0) (Dfs.reachable g 0))

(* ---- differential: ring-buffer BFS vs a Queue-based reference ----
   The production BFS uses a flat int-array ring buffer; this reference
   is the classic Stdlib.Queue formulation it replaced.  Identical
   neighbor iteration order means every observable (distances, parents,
   balls) must agree exactly. *)

module Ref_bfs = struct
  let is_alive alive v = match alive with None -> true | Some m -> Bitset.mem m v

  let distances ?alive g src =
    let n = Graph.num_nodes g in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && is_alive alive v then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
    done;
    dist

  let tree ?alive g src =
    let n = Graph.num_nodes g in
    let parent = Array.make n (-1) in
    let q = Queue.create () in
    parent.(src) <- src;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Graph.iter_neighbors g u (fun v ->
          if parent.(v) < 0 && is_alive alive v then begin
            parent.(v) <- u;
            Queue.push v q
          end)
    done;
    parent

  let ball_of_size ?alive g src k =
    let n = Graph.num_nodes g in
    let seen = Array.make n false in
    let ball = Bitset.create n in
    let q = Queue.create () in
    seen.(src) <- true;
    Queue.push src q;
    let size = ref 0 in
    while !size < k && not (Queue.is_empty q) do
      let u = Queue.pop q in
      Bitset.add ball u;
      incr size;
      Graph.iter_neighbors g u (fun v ->
          if (not seen.(v)) && is_alive alive v then begin
            seen.(v) <- true;
            Queue.push v q
          end)
    done;
    ball
end

(* graph + alive mask (always containing the source) + source *)
let gen_graph_mask_src =
  let open QCheck2.Gen in
  Testutil.gen_connected_graph ~max_n:14 () >>= fun g ->
  let n = Graph.num_nodes g in
  int_range 0 ((1 lsl n) - 1) >>= fun mask ->
  int_range 0 (n - 1) >>= fun src ->
  let alive = Bitset.create n in
  for v = 0 to n - 1 do
    if (mask lsr v) land 1 = 1 then Bitset.add alive v
  done;
  Bitset.add alive src;
  return (g, alive, src)

let prop_ring_distances_match_queue =
  prop "ring-buffer distances equal Queue reference" ~count:300 gen_graph_mask_src
    (fun (g, alive, src) ->
      Bfs.distances ~alive g src = Ref_bfs.distances ~alive g src
      && Bfs.distances g src = Ref_bfs.distances g src)

let prop_ring_tree_matches_queue =
  prop "ring-buffer parents equal Queue reference" ~count:300 gen_graph_mask_src
    (fun (g, alive, src) ->
      Bfs.tree ~alive g src = Ref_bfs.tree ~alive g src
      && Bfs.tree g src = Ref_bfs.tree g src)

let prop_ring_ball_matches_queue =
  prop "ball_of_size equals Queue reference for every k" ~count:150 gen_graph_mask_src
    (fun (g, alive, src) ->
      let n = Graph.num_nodes g in
      let ok = ref true in
      for k = 0 to n + 1 do
        if not (Bitset.equal (Bfs.ball_of_size ~alive g src k) (Ref_bfs.ball_of_size ~alive g src k))
        then ok := false
      done;
      !ok)

let prop_grow_ball_resume_equals_restart =
  prop "grow_ball through a size schedule equals restarting per size" ~count:150
    gen_graph_mask_src (fun (g, alive, src) ->
      let n = Graph.num_nodes g in
      let grower = Bfs.ball_grower ~alive g src in
      let ok = ref true in
      let k = ref 1 in
      let prev = ref 0 in
      while !k <= 2 * n do
        let resumed = Bfs.grow_ball grower !k in
        if not (Bitset.equal resumed (Bfs.ball_of_size ~alive g src !k)) then ok := false;
        if Bitset.cardinal resumed <> Bfs.ball_size grower then ok := false;
        if Bfs.ball_size grower < !prev then ok := false;
        prev := Bfs.ball_size grower;
        k := !k * 2
      done;
      (* past the component size the traversal must report exhaustion *)
      Bfs.ball_exhausted grower && !ok)

let test_ball_grower_exhaustion () =
  let t = Bfs.ball_grower path5 0 in
  let b = Bfs.grow_ball t 3 in
  check_int "grew to 3" 3 (Bitset.cardinal b);
  check_bool "not exhausted at 3 of 5" false (Bfs.ball_exhausted t);
  let b = Bfs.grow_ball t 100 in
  check_int "capped at component" 5 (Bitset.cardinal b);
  check_bool "exhausted" true (Bfs.ball_exhausted t);
  check_int "ball_size tracks" 5 (Bfs.ball_size t);
  (* further growth is a no-op *)
  check_bool "idempotent once exhausted" true (Bitset.equal (Bfs.grow_ball t 100) b)

let () =
  Alcotest.run "traversal"
    [
      ( "bfs",
        [
          case "path distances" test_bfs_path;
          case "cycle distances" test_bfs_cycle;
          case "masked" test_bfs_masked;
          case "source checks" test_bfs_source_checks;
          case "multi-source" test_multi_source;
          case "reachable" test_reachable;
          case "tree and path_to" test_tree_and_path_to;
          case "ball" test_ball;
          case "ball_of_size" test_ball_of_size;
          case "ball grower exhaustion" test_ball_grower_exhaustion;
          case "eccentricity" test_eccentricity;
        ] );
      ( "dfs",
        [
          case "preorder" test_dfs_preorder;
          case "connected subset" test_dfs_connected_subset;
          case "forest" test_dfs_forest;
        ] );
      ("properties", [ prop_bfs_distances_triangle_inequality; prop_reachable_equals_dfs ]);
      ( "differential",
        [
          prop_ring_distances_match_queue;
          prop_ring_tree_matches_queue;
          prop_ring_ball_matches_queue;
          prop_grow_ball_resume_equals_restart;
        ] );
    ]
